"""The VFS syscall surface: namespace, reads, writes, fsync, locks."""

import pytest

from repro.constants import BLOCK_SIZE, KIB
from repro.errors import FileExists, FileLocked, FileNotFound, InvalidArgument
from repro.fs.base import FallocMode


def test_create_open_exists(fs):
    fs.create("/a")
    assert fs.exists("/a")
    with pytest.raises(FileExists):
        fs.create("/a")
    handle = fs.open("/a")
    assert handle.size == 0
    with pytest.raises(FileNotFound):
        fs.open("/missing")
    fs.open("/missing", create=True)
    assert fs.exists("/missing")


def test_listdir(fs):
    for name in ("/d/a", "/d/b", "/other"):
        fs.create(name)
    assert fs.listdir("/d") == ["/d/a", "/d/b"]
    assert fs.listdir("/d/") == ["/d/a", "/d/b"]


def test_write_read_roundtrip_buffered(fs):
    handle = fs.open("/f", create=True)
    data = bytes(range(256)) * 64
    fs.write(handle, 100, data=data)
    result = fs.read(handle, 100, len(data), want_data=True)
    assert result.data == data


def test_write_read_roundtrip_direct(fs):
    handle = fs.open("/f", o_direct=True, create=True)
    data = b"\xab" * (64 * KIB)
    fs.write(handle, 0, data=data)
    result = fs.read(handle, 0, 64 * KIB, want_data=True)
    assert result.data == data


def test_o_direct_requires_alignment(fs):
    handle = fs.open("/f", o_direct=True, create=True)
    fs.write(handle, 0, 8 * KIB)
    with pytest.raises(InvalidArgument):
        fs.read(handle, 1, 4 * KIB)
    with pytest.raises(InvalidArgument):
        fs.write(handle, 4 * KIB, 100)


def test_read_clamps_to_eof(fs):
    handle = fs.open("/f", create=True)
    fs.write(handle, 0, data=b"x" * 100)
    result = fs.read(handle, 50, 1000, want_data=True)
    assert len(result.data) == 50
    empty = fs.read(handle, 200, 10, want_data=True)
    assert empty.data == b""


def test_holes_read_as_zeros(fs):
    handle = fs.open("/f", create=True)
    fs.write(handle, 8 * KIB, data=b"end")
    result = fs.read(handle, 0, 4 * KIB, want_data=True)
    assert result.data == b"\x00" * 4 * KIB


def test_buffered_write_defers_io(fs):
    handle = fs.open("/f", create=True)
    result = fs.write(handle, 0, 64 * KIB)
    assert result.requests == 0  # nothing hit the device yet
    sync = fs.fsync(handle)
    assert sync.requests > 0
    assert fs.device.stats.write_bytes >= 64 * KIB


def test_odirect_write_hits_device(fs):
    handle = fs.open("/f", o_direct=True, create=True)
    result = fs.write(handle, 0, 64 * KIB)
    assert result.requests > 0
    assert fs.device.stats.write_bytes >= 64 * KIB


def test_sequential_buffered_reads_cached(fs):
    handle = fs.open("/f", o_direct=True, create=True)
    now = fs.write(handle, 0, 512 * KIB).finish_time
    reader = fs.open("/f")
    requests = []
    for i in range(16):
        result = fs.read(reader, i * 32 * KIB, 32 * KIB, now=now)
        now = result.finish_time
        requests.append(result.requests)
    # one 128 KiB fetch per readahead window, cache hits in between
    assert requests == [1, 0, 0, 0] * 4


def test_unlink_frees_space(fs):
    free_before = fs.free_space.free_bytes
    handle = fs.open("/f", o_direct=True, create=True)
    fs.write(handle, 0, 256 * KIB)
    assert fs.free_space.free_bytes == free_before - 256 * KIB
    fs.unlink("/f")
    assert fs.free_space.free_bytes == free_before
    assert not fs.exists("/f")


def test_truncate_shrinks(fs):
    handle = fs.open("/f", o_direct=True, create=True)
    fs.write(handle, 0, 64 * KIB)
    free_mid = fs.free_space.free_bytes
    fs.truncate(handle, 32 * KIB)
    assert handle.size == 32 * KIB
    assert fs.free_space.free_bytes == free_mid + 32 * KIB


def test_truncate_grow_leaves_hole(fs):
    handle = fs.open("/f", create=True)
    fs.truncate(handle, 1000)
    assert handle.size == 1000
    result = fs.read(handle, 0, 1000, want_data=True)
    assert result.data == b"\x00" * 1000


def test_locking(fs):
    handle = fs.open("/f", o_direct=True, create=True, app="writer")
    fs.write(handle, 0, 4 * KIB)
    fs.lock_file("/f", "fragpicker")
    with pytest.raises(FileLocked):
        fs.write(handle, 0, 4 * KIB)
    with pytest.raises(FileLocked):
        fs.unlock_file("/f", "someone-else")
    fs.unlock_file("/f", "fragpicker")
    fs.write(handle, 0, 4 * KIB)  # unlocked again


def test_monitor_hook(fs):
    events = []
    fs.attach_monitor(events.append)
    handle = fs.open("/f", o_direct=True, create=True, app="me")
    fs.write(handle, 0, 4 * KIB)
    fs.read(handle, 0, 4 * KIB)
    fs.detach_monitor(events.append)
    fs.read(handle, 0, 4 * KIB)
    assert [e.op for e in events] == ["write", "read"]
    assert events[0].app == "me"
    assert events[0].o_direct


def test_drop_caches(fs):
    handle = fs.open("/f", o_direct=True, create=True)
    now = fs.write(handle, 0, 128 * KIB).finish_time
    reader = fs.open("/f")
    fs.read(reader, 0, 128 * KIB, now=now)
    assert len(fs.page_cache) > 0
    fs.drop_caches()
    assert len(fs.page_cache) == 0


def test_fsync_commits_metadata_journal(fs):
    handle = fs.open("/f", o_direct=True, create=True)
    now = fs.write(handle, 0, 4 * KIB).finish_time
    meta_before = fs.tracer.tag("meta").write_bytes
    fs.fsync(handle, now=now)
    assert fs.tracer.tag("meta").write_bytes > meta_before


def test_time_never_goes_backwards(fs):
    handle = fs.open("/f", o_direct=True, create=True)
    now = 0.0
    for i in range(10):
        result = fs.write(handle, i * 4 * KIB, 4 * KIB, now=now)
        assert result.finish_time >= now
        now = result.finish_time
