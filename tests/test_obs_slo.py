"""The SLO engine: specs, burn-rate math, documents, comparison."""

import json

import pytest

from repro.obs import hooks
from repro.obs.hooks import Instrumentation
from repro.obs.slo import (
    SCHEMA,
    SloEvaluator,
    SloPlane,
    SloSpec,
    build_document,
    compare,
    fingerprint,
    load,
    load_specs,
    prometheus_registry,
    report_text,
    save,
    validate,
)


@pytest.fixture(autouse=True)
def _restore_global_instrumentation():
    yield
    hooks.disable()


def _spec(**overrides):
    base = dict(
        name="lat", metric="lat_s", threshold=1.0, objective="le",
        target=0.90, fast_windows=1, slow_windows=2,
        fast_burn=2.0, slow_burn=1.5,
    )
    base.update(overrides)
    return SloSpec(**base)


# -- specs -------------------------------------------------------------


def test_spec_validation():
    with pytest.raises(ValueError):
        _spec(objective="eq")
    with pytest.raises(ValueError):
        _spec(target=1.0)
    with pytest.raises(ValueError):
        _spec(target=0.0)
    with pytest.raises(ValueError):
        _spec(fast_windows=0)
    with pytest.raises(ValueError):
        _spec(fast_burn=0.0)


def test_spec_objective_directions_and_budget():
    le = _spec(objective="le")
    assert not le.bad(1.0) and le.bad(1.01)
    ge = _spec(objective="ge")
    assert not ge.bad(1.0) and ge.bad(0.99)
    assert _spec(target=0.90).budget == pytest.approx(0.10)


def test_spec_dict_roundtrip_rejects_unknown_keys():
    spec = _spec()
    assert SloSpec.from_dict(spec.to_dict()) == spec
    with pytest.raises(ValueError, match="unknown"):
        SloSpec.from_dict({**spec.to_dict(), "bogus": 1})


def test_load_specs_accepts_wrapped_and_bare_lists(tmp_path):
    entries = [_spec().to_dict(), _spec(name="other").to_dict()]
    wrapped = tmp_path / "wrapped.json"
    wrapped.write_text(json.dumps({"slos": entries}))
    bare = tmp_path / "bare.json"
    bare.write_text(json.dumps(entries))
    assert load_specs(str(wrapped)) == load_specs(str(bare))
    empty = tmp_path / "empty.json"
    empty.write_text("[]")
    with pytest.raises(ValueError):
        load_specs(str(empty))


# -- evaluator burn math -----------------------------------------------


def test_burn_rate_definition():
    # target 0.90 => budget 0.10; 2 bad of 4 => bad fraction 0.5 => burn 5
    ev = SloEvaluator(_spec())
    verdict = ev.evaluate_window(0, [0.5, 2.0, 3.0, 0.1])
    assert verdict.samples == 4 and verdict.bad == 2
    assert verdict.burn == pytest.approx(5.0)
    assert verdict.breach


def test_idle_window_burns_nothing_but_advances_the_tail():
    ev = SloEvaluator(_spec())
    ev.evaluate_window(0, [2.0, 2.0])  # burn 10
    verdict = ev.evaluate_window(1, [])
    assert verdict.burn == 0.0
    assert not verdict.breach
    # slow window mean covers both: (10 + 0) / 2
    assert verdict.slow == pytest.approx(5.0)
    assert ev.compliance == pytest.approx(0.0)  # 2 bad of 2 samples


def test_alert_requires_fast_and_slow_together():
    # fast_burn 2.0 over 1 window, slow_burn 1.5 over 2 windows
    ev = SloEvaluator(_spec())
    # spike in the first window alone: fast fires, slow mean == fast here
    v0 = ev.evaluate_window(0, [2.0])  # burn 10
    assert v0.alert
    # a clean window then a mild spike: fast 5, slow (0+5)/2 = 2.5 -> alert
    ev2 = SloEvaluator(_spec())
    ev2.evaluate_window(0, [0.1])
    v1 = ev2.evaluate_window(1, [2.0, 0.1])  # burn 5
    assert v1.fast == pytest.approx(5.0)
    assert v1.slow == pytest.approx(2.5)
    assert v1.alert
    # mild spike whose slow confirmation fails: fast 2.0, slow 1.0
    ev3 = SloEvaluator(_spec(fast_burn=2.0, slow_burn=1.5))
    ev3.evaluate_window(0, [0.1, 0.1, 0.1, 0.1, 0.1])  # burn 0
    v2 = ev3.evaluate_window(1, [2.0, 0.1, 0.1, 0.1, 0.1])  # burn 2
    assert v2.fast == pytest.approx(2.0)
    assert v2.slow == pytest.approx(1.0)
    assert not v2.alert


def test_budget_accounting_sums_to_one():
    ev = SloEvaluator(_spec())
    ev.evaluate_window(0, [2.0, 0.1, 0.1, 0.1])  # 1 bad of 4
    assert ev.budget_consumed == pytest.approx(2.5)
    assert ev.budget_remaining == pytest.approx(-1.5)
    assert ev.budget_consumed + ev.budget_remaining == pytest.approx(1.0)
    summary = ev.summary()
    assert summary["compliance"] == pytest.approx(0.75)
    assert summary["last_fast_burn"] == summary["burn"][-1]


def test_idle_evaluator_reports_full_compliance():
    ev = SloEvaluator(_spec())
    assert ev.compliance == 1.0
    assert ev.budget_consumed == 0.0
    assert ev.summary()["last_slow_burn"] == 0.0


# -- the plane ----------------------------------------------------------


def test_plane_rejects_duplicate_names():
    with pytest.raises(ValueError, match="duplicate"):
        SloPlane([_spec(), _spec()], window=1.0)


def test_plane_evaluates_each_window_once():
    plane = SloPlane([_spec()], window=1.0)
    plane.observe("lat_s", 0.5, 2.0)
    fired = plane.evaluate_through(0)
    assert len(fired) == 1  # burn 10 >= fast 2 and slow 1.5
    assert plane.evaluate_through(0) == []  # already evaluated
    ev = plane.evaluators["lat"]
    assert ev.windows == 1
    plane.evaluate_through(2)
    assert ev.windows == 3  # two idle windows evaluated exactly once
    assert plane.alerts == fired


def test_plane_evaluate_all_covers_every_sampled_window():
    plane = SloPlane([_spec()], window=1.0)
    plane.observe("lat_s", 0.5, 0.1)
    plane.observe("lat_s", 4.5, 0.1)
    plane.evaluate_all()
    assert plane.evaluators["lat"].windows == 5


def test_plane_mirrors_into_armed_instrumentation_only():
    plane = SloPlane([_spec()], window=1.0)
    plane.observe("lat_s", 0.5, 2.0)
    plane.evaluate_through(0)  # unbound: no mirroring, no crash

    obs = Instrumentation()
    armed = SloPlane([_spec()], window=1.0)
    armed.bind(obs)
    armed.observe("lat_s", 0.5, 2.0)
    armed.evaluate_through(0)
    assert obs.registry.counter("slo.breaches").value == 1
    assert obs.registry.counter("slo.alerts").value == 1
    assert obs.registry.gauge("slo.lat.burn_fast").value == pytest.approx(10.0)
    names = [e.name for e in obs.spans.events]
    assert "slo.breach" in names and "slo.burn" in names


def test_firing_reflects_latest_window():
    plane = SloPlane([_spec()], window=1.0)
    plane.observe("lat_s", 0.5, 2.0)
    plane.evaluate_through(0)
    assert plane.firing() == ["lat"]
    plane.evaluate_through(3)  # idle windows cool the burn off
    assert plane.firing() == []


# -- documents ----------------------------------------------------------


def _document():
    plane = SloPlane([_spec()], window=1.0)
    plane.observe("lat_s", 0.5, 2.0)
    plane.observe("lat_s", 1.5, 0.1)
    plane.evaluate_through(1)
    return build_document("unit", {"kind": "unit", "seed": 3}, plane)


def test_document_shape_save_load_validate(tmp_path):
    document = _document()
    assert document["schema"] == SCHEMA
    assert document["fingerprint"] == fingerprint(document)
    validate(document)
    path = tmp_path / "SLO_unit.json"
    save(str(path), document)
    assert load(str(path)) == document
    with pytest.raises(ValueError, match="schema"):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        load(str(bad))


def test_validate_catches_tampering():
    document = _document()
    tampered = json.loads(json.dumps(document))
    tampered["slos"]["lat"]["compliance"] = 1.0
    with pytest.raises(ValueError, match="fingerprint"):
        validate(tampered)


def test_report_text_lists_alerts_and_fingerprint():
    document = _document()
    text = report_text(document)
    assert "lat_s le 1" in text
    assert "burn-rate alert" in text
    assert document["fingerprint"] in text


def test_prometheus_registry_exports_budget_gauges():
    registry = prometheus_registry(_document())
    summary = _document()["slos"]["lat"]
    gauge = registry.gauge("slo.lat.budget_remaining")
    assert gauge.value == pytest.approx(summary["budget_remaining"])
    assert registry.counter("slo.lat.breaches").value == summary["breaches"]


# -- comparison ---------------------------------------------------------


def _doc_with(compliance_values):
    plane = SloPlane([_spec()], window=1.0)
    for index, value in enumerate(compliance_values):
        plane.observe_at("lat_s", index, value)
    plane.evaluate_all()
    return build_document("cmp", {"kind": "unit"}, plane)


def test_compare_is_direction_aware():
    good = _doc_with([0.1, 0.1, 0.1, 0.1])
    bad = _doc_with([2.0, 2.0, 0.1, 0.1])
    comparison = compare(good, bad)
    assert comparison.kind == "slo"
    regressions = {f.metric for f in comparison.findings if f.regression}
    assert "compliance" in regressions or "budget_remaining" in regressions
    assert "breaches" in regressions
    # the other direction is an improvement, not a regression
    assert not any(f.regression for f in compare(bad, good).findings)


def test_compare_warns_on_source_mismatch_and_missing_slos():
    a = _doc_with([0.1])
    b = _doc_with([0.1])
    b["source"] = {"kind": "other"}
    comparison = compare(a, b)
    assert any("sources differ" in w for w in comparison.warnings)
    c = _doc_with([0.1])
    c["slos"] = {}
    comparison = compare(a, c)
    assert any("missing" in w for w in comparison.warnings)
