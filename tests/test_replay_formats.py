"""Trace format parsers: golden files, robustness, round trips."""

import os
import struct

import pytest

from repro.errors import InvalidArgument
from repro.replay.formats import (
    BINARY_MAGIC,
    HEADER_SIZE,
    RECORD_SIZE,
    BinaryTraceReader,
    BinaryTraceWriter,
    BlktraceTextReader,
    CsvTraceReader,
    open_trace,
    sniff_format,
)
from repro.types import IoOp

GOLDEN = os.path.join(os.path.dirname(__file__), "golden")


def golden(name):
    return os.path.join(GOLDEN, name)


# ----------------------------------------------------------------------
# golden-file parses (exact: records AND skip counters)
# ----------------------------------------------------------------------

#: the clean stream both structured goldens (csv, bin) encode
STRUCTURED_OPS = [
    IoOp("read", 0, 0, 4096, 0.001, True),
    IoOp("write", 1, 8192, 16384, 0.002, False),
    IoOp("fsync", 1, 0, 0, 0.003, True),
    IoOp("read", 2, 65536, 131072, 0.004, True),
    # source record said 0.0035: clamped to the 0.004 high-water mark
    IoOp("read", 0, 4096, 4096, 0.004, True),
    IoOp("write", 0, 12288, 8192, 0.008, True),
]


def test_golden_blktrace():
    reader = open_trace(golden("trace_small.blktrace"))
    assert isinstance(reader, BlktraceTextReader)
    ops = list(reader)
    assert ops == [
        IoOp("read", 1, 0, 4096, 0.000104, True),
        IoOp("write", 1, 4096, 8192, 0.000204, True),
        IoOp("read", 2, 0, 16384, 0.000404, True),
        # source said 0.000150: clamped to the high-water mark
        IoOp("write", 3, 0, 4096, 0.000404, True),
        IoOp("read", 5, 0, 32768, 0.000804, True),
        IoOp("write", 8, 0, 65536, 0.000904, True),
    ]
    stats = reader.stats
    assert stats.records == 6
    assert stats.malformed == 2      # prose line + bad timestamp field
    assert stats.zero_length == 1    # "+ 0" record
    assert stats.out_of_order == 1
    assert stats.filtered == 2       # G action + D (discard) rwbs
    assert stats.first_time == 0.000104
    assert stats.last_time == 0.000904


def test_golden_csv():
    reader = open_trace(golden("trace_small.csv"))
    assert isinstance(reader, CsvTraceReader)
    assert list(reader) == STRUCTURED_OPS
    stats = reader.stats
    assert stats.records == 6
    assert stats.malformed == 3      # unknown op, bad time, negative offset
    assert stats.zero_length == 1
    assert stats.out_of_order == 1
    assert stats.filtered == 0


def test_golden_binary():
    reader = open_trace(golden("trace_small.bin"))
    assert isinstance(reader, BinaryTraceReader)
    assert list(reader) == STRUCTURED_OPS
    stats = reader.stats
    # unknown op code + truncated 10-byte tail; zero-size read record
    assert stats.malformed == 2
    assert stats.zero_length == 1
    assert stats.out_of_order == 1


def test_golden_formats_agree():
    """CSV and binary goldens encode the same workload byte for byte."""
    assert list(open_trace(golden("trace_small.csv"))) == list(
        open_trace(golden("trace_small.bin"))
    )


# ----------------------------------------------------------------------
# format detection
# ----------------------------------------------------------------------

def test_sniff_golden_files():
    assert sniff_format(golden("trace_small.blktrace")) == "blktrace"
    assert sniff_format(golden("trace_small.csv")) == "csv"
    assert sniff_format(golden("trace_small.bin")) == "binary"


def test_sniff_csv_without_extension(tmp_path):
    path = tmp_path / "noext"
    path.write_text("0.1,read,0,0,4096\n")
    assert sniff_format(str(path)) == "csv"


def test_open_trace_unknown_format(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("time,op,file_id,offset,size\n")
    with pytest.raises(InvalidArgument):
        open_trace(str(path), fmt="xml")


# ----------------------------------------------------------------------
# writer <-> reader round trip
# ----------------------------------------------------------------------

def test_binary_round_trip(tmp_path):
    path = str(tmp_path / "t.bin")
    ops = [
        IoOp("read", 7, 4096, 8192, 1.5, True),
        IoOp("write", 2**40, 2**35, 2**20, 2.25, False),
        IoOp("fsync", 0, 0, 0, 3.0, True),
    ]
    with BinaryTraceWriter(path) as writer:
        for op in ops:
            writer.write_op(op)
    assert writer.written == 3
    assert os.path.getsize(path) == HEADER_SIZE + 3 * RECORD_SIZE
    reader = BinaryTraceReader(path)
    assert list(reader) == ops
    assert reader.stats.malformed == 0


def test_writer_rejects_unknown_op(tmp_path):
    with BinaryTraceWriter(str(tmp_path / "t.bin")) as writer:
        with pytest.raises(InvalidArgument):
            writer.write_op(IoOp("trim", 0, 0, 4096))


# ----------------------------------------------------------------------
# robustness: truncation, bad magic, bad version
# ----------------------------------------------------------------------

def _write_records(path, count):
    with BinaryTraceWriter(str(path)) as writer:
        for i in range(count):
            writer.write_op(IoOp("read", i, 0, 4096, float(i)))


def test_truncated_binary_counted_not_raised(tmp_path):
    path = tmp_path / "t.bin"
    _write_records(path, 5)
    data = path.read_bytes()
    path.write_bytes(data[:-11])  # kill the last record's tail
    reader = BinaryTraceReader(str(path))
    assert len(list(reader)) == 4
    assert reader.stats.malformed == 1


def test_truncated_across_chunk_boundary(tmp_path):
    """A record straddling the 2048-record chunk seam must survive; a
    truncated file ending inside the seam must be counted."""
    path = tmp_path / "t.bin"
    count = BinaryTraceReader._CHUNK_RECORDS + 3
    _write_records(path, count)
    reader = BinaryTraceReader(str(path))
    assert len(list(reader)) == count

    data = path.read_bytes()
    cut = HEADER_SIZE + BinaryTraceReader._CHUNK_RECORDS * RECORD_SIZE + 7
    path.write_bytes(data[:cut])
    reader = BinaryTraceReader(str(path))
    assert len(list(reader)) == BinaryTraceReader._CHUNK_RECORDS
    assert reader.stats.malformed == 1


def test_header_only_file(tmp_path):
    path = tmp_path / "t.bin"
    _write_records(path, 0)
    reader = BinaryTraceReader(str(path))
    assert list(reader) == []
    assert reader.stats.malformed == 0


def test_truncated_header(tmp_path):
    path = tmp_path / "t.bin"
    path.write_bytes(BINARY_MAGIC[:2])
    reader = BinaryTraceReader(str(path))
    assert list(reader) == []
    assert reader.stats.malformed == 1


def test_bad_magic_raises(tmp_path):
    path = tmp_path / "t.bin"
    path.write_bytes(b"NOPE" + b"\x00" * 64)
    with pytest.raises(InvalidArgument):
        list(BinaryTraceReader(str(path)))


def test_bad_version_raises(tmp_path):
    path = tmp_path / "t.bin"
    path.write_bytes(struct.pack("<4sBB2x", BINARY_MAGIC, 99, RECORD_SIZE))
    with pytest.raises(InvalidArgument):
        list(BinaryTraceReader(str(path)))


# ----------------------------------------------------------------------
# text-parser robustness
# ----------------------------------------------------------------------

def test_csv_all_malformed(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("time,op,file_id,offset,size\nnope\nstill,not,a,record\n")
    reader = CsvTraceReader(str(path))
    assert list(reader) == []
    assert reader.stats.malformed == 2


def test_blktrace_all_actions_accepted_when_asked(tmp_path):
    path = tmp_path / "t.txt"
    line = "8,0 1 1 0.001 9 {a} R 2048 + 8 [x]\n"
    path.write_text(line.format(a="Q") + line.format(a="C"))
    default = BlktraceTextReader(str(path))
    assert len(list(default)) == 1
    both = BlktraceTextReader(str(path), actions=frozenset({"Q", "C"}))
    assert len(list(both)) == 2


def test_blktrace_region_lifting(tmp_path):
    path = tmp_path / "t.txt"
    # sector 10240 * 512B = 5 MiB: region 1, rebased offset 1 MiB
    path.write_text("8,0 1 1 0.001 9 Q W 10240 + 8 [x]\n")
    reader = BlktraceTextReader(str(path), region_bytes=4 * 1024 * 1024)
    (op,) = list(reader)
    assert op.file_id == 1
    assert op.offset == 1024 * 1024
    assert op.size == 4096


def test_out_of_order_timestamps_clamped_monotonic(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text(
        "0.5,read,0,0,4096\n0.1,read,0,0,4096\n0.7,read,0,0,4096\n"
        "0.2,read,0,0,4096\n"
    )
    reader = CsvTraceReader(str(path))
    times = [op.time for op in reader]
    assert times == [0.5, 0.5, 0.7, 0.7]
    assert reader.stats.out_of_order == 2
    assert times == sorted(times)
