"""Synthetic fragmented-file factory and access patterns."""

import pytest

from repro.constants import KIB, MIB
from repro.errors import InvalidArgument
from repro.workloads.synthetic import (
    FragmentSpec,
    make_fragmented_file,
    make_paper_synthetic_file,
    sequential_read,
    sequential_update,
    stride_read,
    stride_update,
)


def test_fragment_spec_validation():
    with pytest.raises(InvalidArgument):
        FragmentSpec(0, 4 * KIB)
    with pytest.raises(InvalidArgument):
        FragmentSpec(4 * KIB, 1000)


def test_layout_matches_spec(fs):
    spec = FragmentSpec(frag_size=8 * KIB, frag_distance=32 * KIB)
    make_fragmented_file(fs, "/s", 64 * KIB, spec)
    extents = fs.inode_of("/s").extent_map.extents()
    assert len(extents) == 8
    assert all(e.length == 8 * KIB for e in extents)
    gaps = [b.disk_offset - a.disk_end for a, b in zip(extents, extents[1:])]
    assert all(g == 32 * KIB for g in gaps)


def test_fallocate_dummy_same_layout(fs):
    spec = FragmentSpec(frag_size=8 * KIB, frag_distance=32 * KIB)
    make_fragmented_file(fs, "/s", 64 * KIB, spec, fallocate_dummy=True)
    extents = fs.inode_of("/s").extent_map.extents()
    gaps = [b.disk_offset - a.disk_end for a, b in zip(extents, extents[1:])]
    assert all(g == 32 * KIB for g in gaps)


def test_zero_distance_contiguous(fs):
    make_fragmented_file(fs, "/s", 64 * KIB, FragmentSpec(8 * KIB, 0))
    assert fs.inode_of("/s").fragment_count() == 1


def test_paper_file_unit_structure(fs):
    make_paper_synthetic_file(fs, "/p", 512 * KIB)  # 2 units
    extents = fs.inode_of("/p").extent_map.extents()
    sizes = sorted({e.length for e in extents})
    assert sizes == [4 * KIB, 128 * KIB]
    assert sum(1 for e in extents if e.length == 128 * KIB) == 2
    assert sum(1 for e in extents if e.length == 4 * KIB) == 64


def test_paper_file_size_validated(fs):
    with pytest.raises(InvalidArgument):
        make_paper_synthetic_file(fs, "/p", 300 * KIB)


def test_patterns_return_throughput(fs):
    now = make_paper_synthetic_file(fs, "/p", 512 * KIB)
    for runner in (sequential_read, stride_read, sequential_update, stride_update):
        now, mbps = runner(fs, "/p", now=now)
        assert mbps > 0


def test_stride_touches_less_data(fs):
    now = make_paper_synthetic_file(fs, "/p", 1 * MIB + 512 * KIB + 512 * KIB)
    before = fs.device.stats.read_bytes
    now, _ = sequential_read(fs, "/p", now=now)
    seq_bytes = fs.device.stats.read_bytes - before
    before = fs.device.stats.read_bytes
    now, _ = stride_read(fs, "/p", now=now)
    stride_bytes = fs.device.stats.read_bytes - before
    assert stride_bytes < seq_bytes


def test_pattern_requires_big_enough_file(fs):
    handle = fs.open("/tiny", o_direct=True, create=True)
    fs.write(handle, 0, 4 * KIB)
    with pytest.raises(InvalidArgument):
        sequential_read(fs, "/tiny")
