"""FIEMAP / filefrag equivalents."""

from repro.constants import KIB
from repro.fs.fiemap import fiemap, fragment_count, is_fragmented


def fragmented_file(fs, path="/f", pieces=4):
    handle = fs.open(path, o_direct=True, create=True)
    dummy = fs.open(path + ".d", o_direct=True, create=True)
    now = 0.0
    for i in range(pieces):
        now = fs.write(handle, i * 8 * KIB, 8 * KIB, now=now).finish_time
        now = fs.write(dummy, i * 8 * KIB, 8 * KIB, now=now).finish_time
    return handle


def test_fiemap_reports_extents(fs):
    fragmented_file(fs, pieces=3)
    extents = fiemap(fs, "/f")
    assert len(extents) == 3
    assert extents[0].logical == 0
    assert extents[-1].is_last
    assert all(e.length == 8 * KIB for e in extents)


def test_fiemap_merges_contiguous(fs):
    handle = fs.open("/g", o_direct=True, create=True)
    now = fs.write(handle, 0, 8 * KIB).finish_time
    fs.write(handle, 8 * KIB, 8 * KIB, now=now)  # allocated right after
    extents = fiemap(fs, "/g")
    assert len(extents) == 1
    assert extents[0].length == 16 * KIB


def test_fiemap_range_query(fs):
    fragmented_file(fs, pieces=4)
    extents = fiemap(fs, "/f", offset=8 * KIB, length=16 * KIB)
    assert len(extents) == 2
    assert extents[0].logical == 8 * KIB


def test_fragment_count(fs):
    fragmented_file(fs, pieces=5)
    assert fragment_count(fs, "/f") == 5
    assert fragment_count(fs, "/f.d") == 5


def test_is_fragmented(fs):
    fragmented_file(fs, pieces=4)
    assert is_fragmented(fs, "/f", 0, 32 * KIB)
    # within one piece: not fragmented
    assert not is_fragmented(fs, "/f", 0, 8 * KIB)
    # a hole-only or empty range is not fragmented
    empty = fs.open("/empty", create=True)
    assert not is_fragmented(fs, "/empty", 0, 8 * KIB)
