"""The ``repro replay`` verb and the fleet ``trace:<path>`` workload."""

import json

import pytest

from repro.cli import main
from repro.errors import InvalidArgument
from repro.fleet import FleetConfig
from repro.fleet.controller import run_fleet
from repro.fleet.spec import make_volume_specs
from repro.replay import TraceProfile, generate_trace, validate


@pytest.fixture
def trace_path(tmp_path):
    path = str(tmp_path / "t.bin")
    generate_trace(path, TraceProfile(ops=1500, seed=4, files=8))
    return path


def test_replay_generate(capsys, tmp_path):
    out = str(tmp_path / "gen.bin")
    assert main(["replay", "--generate", "500", "--out", out,
                 "--seed", "2", "--files", "8"]) == 0
    assert "wrote" in capsys.readouterr().out
    assert main(["replay", "--trace", out,
                 "--json", str(tmp_path / "R.json")]) == 0


def test_replay_document_round_trip(capsys, trace_path, tmp_path):
    doc_path = tmp_path / "REPLAY_x.json"
    assert main(["replay", "--trace", trace_path, "--label", "x",
                 "--json", str(doc_path)]) == 0
    out = capsys.readouterr().out
    assert "trace replay report" in out
    assert "fingerprint" in out
    document = json.loads(doc_path.read_text())
    validate(document)
    assert document["label"] == "x"
    assert document["reconstruction"]["ops"] > 0


def test_replay_fingerprint_stable_across_invocations(trace_path, tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    assert main(["replay", "--trace", trace_path, "--json", str(a)]) == 0
    assert main(["replay", "--trace", trace_path, "--json", str(b)]) == 0
    doc_a, doc_b = json.loads(a.read_text()), json.loads(b.read_text())
    assert doc_a["fingerprint"] == doc_b["fingerprint"]


def test_replay_compare_identical_documents(capsys, trace_path, tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    main(["replay", "--trace", trace_path, "--label", "a", "--json", str(a)])
    main(["replay", "--trace", trace_path, "--label", "b", "--json", str(b)])
    capsys.readouterr()
    assert main(["replay", "--compare", str(a), str(b)]) == 0
    assert "0 regression(s)" in capsys.readouterr().out


def test_replay_without_trace_errors(capsys):
    assert main(["replay"]) == 2
    assert "--trace" in capsys.readouterr().err


def test_replay_smoke_needs_no_trace(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["replay", "--smoke", "--json", str(tmp_path / "R.json")]) == 0
    assert "trace replay report" in capsys.readouterr().out


# ----------------------------------------------------------------------
# fleet integration
# ----------------------------------------------------------------------

def test_fleet_config_rejects_bad_workload():
    with pytest.raises(InvalidArgument):
        FleetConfig(workload="bogus")
    with pytest.raises(InvalidArgument):
        FleetConfig(workload="trace:")
    FleetConfig(workload="read_seq")
    FleetConfig(workload="trace:/some/path.bin")


def test_workload_override_reaches_every_volume(trace_path):
    config = FleetConfig.smoke(volumes=4, workload=f"trace:{trace_path}")
    specs = make_volume_specs(config)
    assert all(s.workload == f"trace:{trace_path}" for s in specs)


def test_workload_override_does_not_perturb_other_draws(trace_path):
    plain = make_volume_specs(FleetConfig.smoke(volumes=4))
    traced = make_volume_specs(
        FleetConfig.smoke(volumes=4, workload=f"trace:{trace_path}")
    )
    for a, b in zip(plain, traced):
        assert a.files == b.files
        assert a.fs_type == b.fs_type and a.device == b.device


def test_plain_fleet_fingerprint_unaffected_by_workload_field():
    """The conditional to_dict key keeps pre-override fleet documents
    byte-identical."""
    config = FleetConfig.smoke(volumes=2)
    assert "workload" not in config.to_dict()
    traced = FleetConfig.smoke(volumes=2, workload="read_seq")
    assert traced.to_dict()["workload"] == "read_seq"


def test_trace_driven_fleet_runs_and_reproduces(trace_path):
    config = FleetConfig.smoke(
        volumes=2, ticks=3, workload=f"trace:{trace_path}"
    )
    report_a = run_fleet(config)
    report_b = run_fleet(config)
    doc_a, doc_b = report_a.to_dict(), report_b.to_dict()
    assert doc_a["fingerprint"] == doc_b["fingerprint"]
    assert doc_a["foreground"]["ops"] > 0
    assert doc_a["foreground"]["read_count"] > 0


def test_fleet_cli_accepts_trace_workload(capsys, trace_path, tmp_path):
    doc_path = tmp_path / "FLEET_t.json"
    assert main(["fleet", "--smoke", "--volumes", "2", "--ticks", "2",
                 "--workload", f"trace:{trace_path}",
                 "--json", str(doc_path)]) == 0
    document = json.loads(doc_path.read_text())
    assert document["config"]["workload"] == f"trace:{trace_path}"
