"""StorageDevice batch/timeline semantics."""

import pytest

from repro.block import IoCommand, IoOp
from repro.constants import GIB, KIB
from repro.device import make_device
from repro.errors import DeviceError


def read(offset, length=4 * KIB, tag=""):
    return IoCommand(IoOp.READ, offset, length, tag)


def test_empty_batch():
    device = make_device("optane", capacity=1 * GIB)
    result = device.submit([], start_time=3.0)
    assert result.finish_time == 3.0
    assert result.commands == 0


def test_capacity_enforced():
    device = make_device("optane", capacity=1 * GIB)
    with pytest.raises(DeviceError):
        device.submit([read(1 * GIB)], 0.0)


def test_batch_completion_is_synchronous():
    """A batch finishes only when every split command finished."""
    device = make_device("optane", capacity=1 * GIB)
    single = device.submit([read(0, 128 * KIB)], 0.0)
    device2 = make_device("optane", capacity=1 * GIB)
    split = device2.submit([read(i * 64 * KIB) for i in range(32)], 0.0)
    assert split.commands == 32
    assert split.finish_time > single.finish_time


def test_queuing_device_overlaps_submitters():
    """Optane banks let a small command overlap a big one on other banks."""
    device = make_device("optane", capacity=1 * GIB)
    # a batch hammering bank 0 only (offsets stride 16 KiB = 4 pages)
    big = device.submit([read(i * 16 * KIB) for i in range(16)], 0.0)
    # a 4 KiB read on bank 1, submitted at the same instant, overlaps
    small = device.submit([read(1 * 4 * KIB)], 0.0)
    assert small.finish_time < big.finish_time


def test_non_queuing_device_serializes():
    device = make_device("microsd", capacity=1 * GIB)
    first = device.submit([read(0, 128 * KIB)], 0.0)
    second = device.submit([read(256 * KIB)], 0.0)
    assert second.finish_time > first.finish_time


def test_stats_accumulate():
    device = make_device("flash", capacity=1 * GIB)
    device.submit([read(0, 8 * KIB)], 0.0)
    device.submit([IoCommand(IoOp.WRITE, 0, 4 * KIB)], 1.0)
    device.submit([IoCommand(IoOp.DISCARD, 0, 64 * KIB)], 2.0)
    assert device.stats.read_bytes == 8 * KIB
    assert device.stats.write_bytes == 4 * KIB
    assert device.stats.discard_bytes == 64 * KIB
    assert device.stats.total_commands == 3


def test_busy_until_moves_forward():
    device = make_device("flash", capacity=1 * GIB)
    assert device.busy_until == 0.0
    result = device.submit([read(0, 128 * KIB)], 5.0)
    assert device.busy_until >= result.finish_time - 1e-12


def test_listener_called():
    device = make_device("optane", capacity=1 * GIB)
    seen = []
    device.add_listener(lambda cmds, start, finish: seen.append((len(cmds), start, finish)))
    device.submit([read(0)], 1.0)
    assert seen and seen[0][0] == 1
