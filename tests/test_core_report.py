"""Defrag reports."""

from repro.core.report import DefragReport


def test_elapsed_and_totals():
    report = DefragReport(tool="x", started_at=1.0, finished_at=3.5,
                          read_bytes=100, write_bytes=200)
    assert report.elapsed == 2.5
    assert report.total_io_bytes == 300


def test_summary_fields():
    report = DefragReport(tool="e4defrag")
    report.fragments_before = {"/a": 10, "/b": 5}
    report.fragments_after = {"/a": 1, "/b": 1}
    report.ranges_examined = 4
    report.ranges_migrated = 2
    report.ranges_skipped_contiguous = 1
    report.ranges_skipped_cold = 1
    text = report.summary()
    assert "e4defrag" in text
    assert "15 -> 2" in text
    assert "2/4" in text
