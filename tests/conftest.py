"""Shared fixtures: small, fast device + filesystem instances."""

from __future__ import annotations

import pytest

from repro.constants import GIB
from repro.device import make_device
from repro.fs import make_filesystem


@pytest.fixture(autouse=True)
def _ledger_in_tmp(tmp_path, monkeypatch):
    """Route run-ledger writes into the test's tmp dir.

    Document verbs append manifests to benchmarks/ledger by default;
    tests must never grow the working tree.  Ledger tests override via
    an explicit directory argument.
    """
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))


@pytest.fixture
def optane():
    return make_device("optane", capacity=1 * GIB)


@pytest.fixture
def flash():
    return make_device("flash", capacity=1 * GIB)


@pytest.fixture
def microsd():
    return make_device("microsd", capacity=1 * GIB)


@pytest.fixture
def hdd():
    return make_device("hdd", capacity=4 * GIB)


@pytest.fixture
def fs(optane):
    """Default filesystem: Ext4 on Optane."""
    return make_filesystem("ext4", optane)


@pytest.fixture(params=["ext4", "f2fs", "btrfs"])
def any_fs(request):
    """One of each filesystem personality, on a fresh Optane."""
    return make_filesystem(request.param, make_device("optane", capacity=1 * GIB))
