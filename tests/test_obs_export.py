"""Chrome-trace and table exporter tests."""

import json

from repro.obs.export import (
    chrome_trace,
    metrics_json,
    metrics_table,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder


def _sample_recorder():
    rec = SpanRecorder()
    outer = rec.start("fragpicker.defragment", 0.0, track="bg", files=2)
    inner = rec.start("fragpicker.migrate", 0.5, track="bg", file="/a")
    rec.finish(inner, 1.0)
    rec.finish(outer, 2.0)
    rec.event("fragpicker.skip_contiguous", 1.5, track="bg", file="/b")
    return rec


def test_chrome_trace_schema():
    rec = _sample_recorder()
    reg = MetricsRegistry()
    reg.histogram("device.d.command_latency.read").observe(1e-5)
    doc = chrome_trace(rec, reg)
    assert isinstance(doc["traceEvents"], list)
    assert doc["displayTimeUnit"] == "ms"
    phases = {event["ph"] for event in doc["traceEvents"]}
    assert {"M", "X", "i"} <= phases
    for event in doc["traceEvents"]:
        assert {"name", "ph", "pid", "tid"} <= set(event)
        if event["ph"] == "X":
            assert event["ts"] >= 0 and event["dur"] >= 0
        if event["ph"] == "i":
            assert event["s"] == "t"
    # metrics ride along under the extra top-level key
    assert doc["metrics"]["device.d.command_latency.read"]["count"] == 1
    json.dumps(doc)  # must be JSON-serializable


def test_chrome_trace_microsecond_conversion_and_args():
    doc = chrome_trace(_sample_recorder())
    migrate = next(e for e in doc["traceEvents"] if e["name"] == "fragpicker.migrate")
    assert migrate["ts"] == 0.5e6
    assert migrate["dur"] == 0.5e6
    assert migrate["args"] == {"file": "/a"}


def test_chrome_trace_tracks_get_thread_names():
    doc = chrome_trace(_sample_recorder())
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert {"bg"} == {e["args"]["name"] for e in meta}
    bg_tid = meta[0]["tid"]
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert all(e["tid"] == bg_tid for e in spans)


def test_write_chrome_trace_roundtrip(tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(str(path), _sample_recorder(), MetricsRegistry())
    doc = json.loads(path.read_text())
    assert any(e["name"] == "fragpicker.defragment" for e in doc["traceEvents"])


def test_metrics_json_and_table():
    reg = MetricsRegistry()
    reg.counter("fs.syscall.read").inc(3)
    reg.gauge("block.queue_backlog_s").set(0.5)
    reg.histogram("fs.syscall_latency.read").observe(1e-4)
    parsed = json.loads(metrics_json(reg))
    assert parsed["fs.syscall.read"]["value"] == 3
    table = metrics_table(reg)
    assert "fs.syscall.read" in table
    assert "p99" in table and "block.queue_backlog_s" in table
