"""Chrome-trace and table exporter tests."""

import json

from repro.obs.export import (
    chrome_trace,
    metrics_json,
    metrics_table,
    prometheus_text,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder


def _sample_recorder():
    rec = SpanRecorder()
    outer = rec.start("fragpicker.defragment", 0.0, track="bg", files=2)
    inner = rec.start("fragpicker.migrate", 0.5, track="bg", file="/a")
    rec.finish(inner, 1.0)
    rec.finish(outer, 2.0)
    rec.event("fragpicker.skip_contiguous", 1.5, track="bg", file="/b")
    return rec


def test_chrome_trace_schema():
    rec = _sample_recorder()
    reg = MetricsRegistry()
    reg.histogram("device.d.command_latency.read").observe(1e-5)
    doc = chrome_trace(rec, reg)
    assert isinstance(doc["traceEvents"], list)
    assert doc["displayTimeUnit"] == "ms"
    phases = {event["ph"] for event in doc["traceEvents"]}
    assert {"M", "X", "i"} <= phases
    for event in doc["traceEvents"]:
        assert {"name", "ph", "pid", "tid"} <= set(event)
        if event["ph"] == "X":
            assert event["ts"] >= 0 and event["dur"] >= 0
        if event["ph"] == "i":
            assert event["s"] == "t"
    # metrics ride along under the extra top-level key
    assert doc["metrics"]["device.d.command_latency.read"]["count"] == 1
    json.dumps(doc)  # must be JSON-serializable


def test_chrome_trace_microsecond_conversion_and_args():
    doc = chrome_trace(_sample_recorder())
    migrate = next(e for e in doc["traceEvents"] if e["name"] == "fragpicker.migrate")
    assert migrate["ts"] == 0.5e6
    assert migrate["dur"] == 0.5e6
    assert migrate["args"] == {"file": "/a"}


def test_chrome_trace_tracks_get_thread_names():
    doc = chrome_trace(_sample_recorder())
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert {"bg"} == {e["args"]["name"] for e in meta}
    bg_tid = meta[0]["tid"]
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert all(e["tid"] == bg_tid for e in spans)


def test_write_chrome_trace_roundtrip(tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(str(path), _sample_recorder(), MetricsRegistry())
    doc = json.loads(path.read_text())
    assert any(e["name"] == "fragpicker.defragment" for e in doc["traceEvents"])


def test_metrics_json_and_table():
    reg = MetricsRegistry()
    reg.counter("fs.syscall.read").inc(3)
    reg.gauge("block.queue_backlog_s").set(0.5)
    reg.histogram("fs.syscall_latency.read").observe(1e-4)
    parsed = json.loads(metrics_json(reg))
    assert parsed["fs.syscall.read"]["value"] == 3
    table = metrics_table(reg)
    assert "fs.syscall.read" in table
    assert "p99" in table and "block.queue_backlog_s" in table


def _one_order(names_first):
    """Registry with the same metrics created in a given order."""
    reg = MetricsRegistry()
    for name in names_first:
        reg.counter(f"c.{name}").inc(1)
        reg.gauge(f"g.{name}").set(2.0)
        reg.histogram(f"h.{name}").observe(1e-4)
    return reg

def test_renderings_are_deterministic_across_creation_order():
    """Tables/JSON/Prometheus text must not depend on which code path
    created a metric first."""
    a = _one_order(["zeta", "alpha", "mid"])
    b = _one_order(["mid", "zeta", "alpha"])
    assert metrics_json(a) == metrics_json(b)
    assert metrics_table(a) == metrics_table(b)
    assert prometheus_text(a) == prometheus_text(b)
    # and the order is actually name-sorted, not accidental
    lines = [l for l in metrics_table(a).splitlines() if l.startswith("c.")]
    assert lines == sorted(lines)


def test_prometheus_text_counter_gauge_histogram():
    reg = MetricsRegistry()
    reg.counter("fs.syscall.read").inc(3)
    reg.gauge("block.queue_backlog_s").set(0.5)
    hist = reg.histogram("lat", bounds=(0.001, 0.01, 0.1))
    hist.observe(0.0005)
    hist.observe(0.005)
    hist.observe(5.0)  # overflows every bound
    text = prometheus_text(reg)
    lines = text.splitlines()
    assert text.endswith("\n")
    # dots sanitized, TYPE lines present
    assert "# TYPE fs_syscall_read counter" in lines
    assert "fs_syscall_read 3" in lines
    assert "# TYPE block_queue_backlog_s gauge" in lines
    assert "block_queue_backlog_s 0.5" in lines
    assert "block_queue_backlog_s_peak 0.5" in lines
    # histogram: cumulative buckets, +Inf catch-all, sum and count
    assert 'lat_bucket{le="0.001"} 1' in lines
    assert 'lat_bucket{le="0.01"} 2' in lines
    assert 'lat_bucket{le="0.1"} 2' in lines
    assert 'lat_bucket{le="+Inf"} 3' in lines
    assert "lat_count 3" in lines
    sum_line = next(l for l in lines if l.startswith("lat_sum "))
    assert float(sum_line.split()[1]) == 5.0055


def test_prometheus_text_empty_registry_is_empty_string():
    assert prometheus_text(MetricsRegistry()) == ""


def test_prometheus_name_sanitization():
    reg = MetricsRegistry()
    reg.counter("device.flash-0.cmds").inc(1)
    text = prometheus_text(reg)
    assert "device_flash_0_cmds 1" in text.splitlines()


def test_prometheus_help_lines_from_central_table():
    from repro.obs.export import METRIC_HELP, metric_help

    reg = MetricsRegistry()
    reg.counter("fleet.fg_ops").inc(5)
    reg.gauge("fleet.jobs_running").set(2)
    reg.histogram("fleet.fg_read_latency_s").observe(0.001)
    text = prometheus_text(reg)
    lines = text.splitlines()
    assert f"# HELP fleet_fg_ops {METRIC_HELP['fleet.fg_ops']}" in lines
    assert (f"# HELP fleet_jobs_running "
            f"{METRIC_HELP['fleet.jobs_running']}") in lines
    # gauges document their _peak companion too
    assert any(l.startswith("# HELP fleet_jobs_running_peak peak of:")
               for l in lines)
    assert (f"# HELP fleet_fg_read_latency_s "
            f"{METRIC_HELP['fleet.fg_read_latency_s']}") in lines
    # HELP precedes TYPE for the same metric (text-format convention)
    help_idx = lines.index(f"# HELP fleet_fg_ops {METRIC_HELP['fleet.fg_ops']}")
    assert lines[help_idx + 1] == "# TYPE fleet_fg_ops counter"
    # undocumented metrics simply carry no HELP line
    reg2 = MetricsRegistry()
    reg2.counter("totally.unknown").inc(1)
    assert "# HELP" not in prometheus_text(reg2)
    # pattern rules cover dynamic families
    assert metric_help("fs.syscall.read") == METRIC_HELP["fs.syscall.*"]
    assert metric_help("slo.lat.burn_fast") == METRIC_HELP["slo.*.burn_fast"]
    assert metric_help("slo.breaches") == METRIC_HELP["slo.breaches"]
    assert metric_help("nope") is None


def test_prometheus_text_format_0_0_4_compliance():
    import re as _re

    reg = MetricsRegistry()
    reg.counter("fs.syscall.read").inc(3)
    reg.gauge("fleet.jobs_running").set(2)
    hist = reg.histogram("fleet.fg_read_latency_s", bounds=(0.001, 0.01))
    hist.observe(0.0005)
    hist.observe(5.0)
    text = prometheus_text(reg)
    assert text.endswith("\n")
    name_re = _re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
    sample_re = _re.compile(
        r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9+.eE\-]+$'
    )
    seen_types = {}
    for line in text.splitlines():
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):]
            name = rest.split(" ", 1)[0]
            assert name_re.fullmatch(name)
        elif line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            assert name_re.fullmatch(name)
            assert kind in ("counter", "gauge", "histogram")
            assert name not in seen_types  # one TYPE line per metric
            seen_types[name] = kind
        else:
            assert sample_re.fullmatch(line), line
    # histogram series complete: buckets cumulative, +Inf, _sum, _count
    lines = text.splitlines()
    buckets = [l for l in lines if "_bucket{" in l]
    counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
    assert counts == sorted(counts)
    assert any('le="+Inf"' in l for l in buckets)
    assert any(l.startswith("fleet_fg_read_latency_s_sum ") for l in lines)
    assert any(l.startswith("fleet_fg_read_latency_s_count ") for l in lines)


def test_prometheus_help_keeps_byte_determinism():
    def build(order):
        reg = MetricsRegistry()
        for name in order:
            reg.counter(name).inc(1)
        return prometheus_text(reg)

    assert (build(["fleet.fg_ops", "slo.alerts", "fs.syscall.read"])
            == build(["fs.syscall.read", "fleet.fg_ops", "slo.alerts"]))


def test_every_metric_from_a_representative_armed_run_has_help():
    """The METRIC_HELP audit: a fully-armed fleet run (faults, SLO,
    provenance — the widest metric surface one verb produces) must not
    emit a single metric the central HELP table cannot describe, and the
    Prometheus rendering must carry a # HELP line for every # TYPE."""
    from repro.fleet.controller import run_fleet
    from repro.fleet.slo import FleetSlo
    from repro.fleet.spec import FleetConfig
    from repro.obs import hooks
    from repro.obs.export import metric_help
    from repro.obs.hooks import Instrumentation

    obs = Instrumentation(provenance=True)
    config = FleetConfig.smoke(volumes=4, faults=True)
    with hooks.use(obs):
        run_fleet(config, slo=FleetSlo.for_config(config))
    names = set(obs.registry.to_dict())
    assert len(names) > 40  # the run exercised a wide surface
    missing = sorted(name for name in names if metric_help(name) is None)
    assert missing == []

    lines = prometheus_text(obs.registry).splitlines()
    documented = {l.split()[2] for l in lines if l.startswith("# HELP")}
    typed = {l.split()[2] for l in lines if l.startswith("# TYPE")}
    assert typed == documented

    # glob patterns resolve via fnmatch: multi-star families included
    assert metric_help("device.optane.command_latency.read") is not None
    assert metric_help("attrib.fs_cpu_s") is not None
    assert metric_help("fragpicker.migration_retries") is not None
    assert metric_help("e4defrag.migrations_failed") is not None
    assert metric_help("sim.actor_step.fg") is not None
    assert metric_help("faults.injected.device_io.transient") is not None
    assert metric_help("obs.harvest.snapshots") is not None
    assert metric_help("obs.events_dropped") is not None
