"""Sparse page store (logical content)."""

from hypothesis import given, strategies as st

from repro.constants import BLOCK_SIZE
from repro.fs.inode import PageStore


def test_unwritten_reads_zero():
    store = PageStore()
    assert store.read(1, 0, 100) == b"\x00" * 100


def test_roundtrip_unaligned():
    store = PageStore()
    store.write(1, 1000, b"hello world")
    assert store.read(1, 1000, 11) == b"hello world"
    assert store.read(1, 990, 10) == b"\x00" * 10


def test_cross_page_write():
    store = PageStore()
    data = bytes(range(256)) * 40  # 10240 bytes, crosses 3 pages
    store.write(1, BLOCK_SIZE - 100, data)
    assert store.read(1, BLOCK_SIZE - 100, len(data)) == data


def test_overwrite():
    store = PageStore()
    store.write(1, 0, b"aaaa")
    store.write(1, 2, b"bb")
    assert store.read(1, 0, 4) == b"aabb"


def test_inodes_isolated():
    store = PageStore()
    store.write(1, 0, b"one")
    store.write(2, 0, b"two")
    assert store.read(1, 0, 3) == b"one"
    assert store.read(2, 0, 3) == b"two"


def test_zero_range_partial_and_full_pages():
    store = PageStore()
    store.write(1, 0, b"x" * (3 * BLOCK_SIZE))
    store.zero_range(1, 100, 2 * BLOCK_SIZE)
    data = store.read(1, 0, 3 * BLOCK_SIZE)
    assert data[:100] == b"x" * 100
    assert data[100 : 100 + 2 * BLOCK_SIZE] == b"\x00" * (2 * BLOCK_SIZE)
    assert data[100 + 2 * BLOCK_SIZE :] == b"x" * (BLOCK_SIZE - 100)


def test_any_content():
    store = PageStore()
    assert not store.any_content(1, 0, BLOCK_SIZE)
    store.write(1, 5 * BLOCK_SIZE, b"data")
    assert store.any_content(1, 5 * BLOCK_SIZE, 10)
    assert store.any_content(1, 0, 6 * BLOCK_SIZE)
    assert not store.any_content(1, 0, 5 * BLOCK_SIZE)


def test_drop():
    store = PageStore()
    store.write(1, 0, b"gone")
    store.drop(1)
    assert store.read(1, 0, 4) == b"\x00" * 4


@given(
    st.lists(
        st.tuples(st.integers(0, 5000), st.binary(min_size=1, max_size=200)),
        max_size=20,
    )
)
def test_matches_bytearray_model(writes):
    store = PageStore()
    model = bytearray(6000)
    for offset, data in writes:
        store.write(7, offset, data)
        model[offset : offset + len(data)] = data
    assert store.read(7, 0, 6000) == bytes(model)
