"""Chrome-trace round-trip: nested spans + counters + flow events survive
serialization, begin/end pairing holds, timestamps stay sane."""

import json

from repro.constants import BLOCK_SIZE
from repro.obs.critical_path import FLOW_TID_BASE, flow_events
from repro.obs.export import TRACE_PID, chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import (
    CommandNode,
    ProvenanceForest,
    SubmitNode,
    SyscallTree,
)
from repro.obs.spans import SpanRecorder


class _FakeSeries:
    def __init__(self, times, values):
        self.times = times
        self.values = values


class _FakeSampler:
    """Sampler look-alike: named counter curves + a raw dump."""

    def __init__(self):
        self.series = {
            "frag.contiguity": _FakeSeries([0.0, 1.0, 2.0], [1.0, 0.6, 0.9]),
        }

    def to_dict(self):
        return {"samples": 3}


def _recorder():
    rec = SpanRecorder()
    run = rec.start("phase.run", 0.0, track="main")
    inner = rec.start("phase.inner", 0.5, track="main", step=1)
    rec.finish(inner, 1.5)
    rec.finish(run, 2.0)
    rec.event("block.cmd", 0.7, track="block", op="read", pid=1)
    return rec


def _forest():
    forest = ProvenanceForest()
    tree = SyscallTree(pid=1, op="read", app="db", path="/f",
                       start=0.5, end=1.4, complete=True)
    tree.submits.append(SubmitNode(1, 1, 0.5, 0.5, 0.6))
    tree.commands.append(CommandNode(
        pid=1, device="flash", unit="channel", op="read", offset=0,
        length=BLOCK_SIZE, issue=0.6, begin=0.7, end=1.3, units=2,
        penalty=0.0,
    ))
    forest.trees[1] = tree
    return forest


def _roundtrip(doc):
    return json.loads(json.dumps(doc))


def test_full_document_survives_json_roundtrip(tmp_path):
    doc = chrome_trace(
        _recorder(), MetricsRegistry(), sampler=_FakeSampler(),
        extra_events=flow_events(_forest()),
    )
    parsed = _roundtrip(doc)
    assert parsed == doc  # no non-JSON types anywhere
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(doc))
    assert json.loads(path.read_text()) == doc


def test_nested_spans_pair_and_nest_in_time():
    doc = _roundtrip(chrome_trace(_recorder()))
    slices = {e["name"]: e for e in doc["traceEvents"]
              if e["ph"] == "X" and e["name"].startswith("phase.")}
    outer, inner = slices["phase.run"], slices["phase.inner"]
    # complete events: one entry per span, duration pairs begin with end
    assert outer["ts"] == 0.0 and outer["dur"] == 2.0e6
    assert inner["ts"] == 0.5e6 and inner["dur"] == 1.0e6
    # the child slice nests inside the parent's window on the same track
    assert outer["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]
    assert inner["tid"] == outer["tid"]
    assert inner["args"] == {"step": 1}


def test_counter_track_is_monotonic_in_time():
    doc = _roundtrip(chrome_trace(_recorder(), sampler=_FakeSampler()))
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert [e["name"] for e in counters] == ["frag.contiguity"] * 3
    stamps = [e["ts"] for e in counters]
    assert stamps == sorted(stamps) and all(ts >= 0 for ts in stamps)
    assert [e["args"]["value"] for e in counters] == [1.0, 0.6, 0.9]
    assert doc["fragTimeline"] == {"samples": 3}


def test_flow_events_ride_along_and_stay_paired():
    doc = _roundtrip(chrome_trace(
        _recorder(), extra_events=flow_events(_forest())
    ))
    prov = [e for e in doc["traceEvents"] if e.get("cat") == "prov"]
    assert prov, "flow events must survive the export"
    starts = [e for e in prov if e["ph"] == "s"]
    finishes = [e for e in prov if e["ph"] == "f"]
    assert len(starts) == len(finishes) == 1
    assert starts[0]["id"] == finishes[0]["id"] == 1
    assert finishes[0]["ts"] >= starts[0]["ts"]
    # provenance tids never collide with the track tids chrome_trace assigns
    track_tids = {e["tid"] for e in doc["traceEvents"]
                  if e.get("cat") != "prov" and e["ph"] != "C"}
    prov_tids = {e["tid"] for e in prov}
    assert prov_tids.isdisjoint(track_tids)
    assert min(prov_tids) >= FLOW_TID_BASE
    assert all(e["pid"] == TRACE_PID for e in prov)


def test_all_timestamps_non_negative_microseconds():
    doc = _roundtrip(chrome_trace(
        _recorder(), MetricsRegistry(), sampler=_FakeSampler(),
        extra_events=flow_events(_forest()),
    ))
    for event in doc["traceEvents"]:
        if "ts" in event:
            assert event["ts"] >= 0
        if event["ph"] == "X":
            assert event["dur"] >= 0
