"""Unit tests for repro.obs.metrics."""

import pytest

from repro.obs.metrics import (
    COUNT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_bounds,
)


def test_exponential_bounds():
    assert exponential_bounds(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)


def test_counter_inc_snapshot_delta():
    counter = Counter("c")
    counter.inc()
    counter.inc(4)
    snap = counter.snapshot()
    counter.inc(10)
    assert counter.value == 15
    assert snap.value == 5
    assert counter.delta(snap).value == 10


def test_gauge_tracks_peak():
    gauge = Gauge("g")
    gauge.set(3.0)
    gauge.set(1.0)
    assert gauge.value == 1.0
    assert gauge.peak == 3.0


def test_histogram_basic_stats():
    hist = Histogram("h", bounds=(1.0, 10.0, 100.0))
    for value in (0.5, 2.0, 5.0, 50.0):
        hist.observe(value)
    assert hist.count == 4
    assert hist.total == pytest.approx(57.5)
    assert hist.mean == pytest.approx(57.5 / 4)
    assert hist.max_value == 50.0
    # one value beyond every bound lands in the overflow bucket
    hist.observe(1000.0)
    assert hist.counts[-1] == 1
    assert hist.max_value == 1000.0


def test_histogram_quantiles_monotone_and_bounded():
    hist = Histogram("h")
    latencies = [i * 1e-5 for i in range(1, 101)]
    for value in latencies:
        hist.observe(value)
    p50, p95, p99 = hist.quantile(0.5), hist.quantile(0.95), hist.quantile(0.99)
    assert 0 < p50 <= p95 <= p99 <= hist.max_value
    # geometric buckets: estimates land within a bucket of the true value
    assert p50 == pytest.approx(5e-4, rel=1.0)
    stats = hist.percentiles()
    assert set(stats) == {"p50", "p95", "p99", "mean", "max"}


def test_histogram_empty_quantile_is_zero():
    assert Histogram("h").quantile(0.99) == 0.0
    assert Histogram("h").mean == 0.0


def test_histogram_snapshot_delta_roundtrip():
    hist = Histogram("h", COUNT_BOUNDS)
    for value in (1, 1, 4, 16):
        hist.observe(value)
    snap = hist.snapshot()
    for value in (64, 256):
        hist.observe(value)
    delta = hist.delta(snap)
    assert snap.count == 4
    assert delta.count == 2
    assert delta.total == pytest.approx(320)
    assert sum(delta.counts) == 2
    # snapshot is independent of later observations
    assert snap.total == pytest.approx(22)


def test_registry_get_or_create_and_snapshot():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.gauge("b") is reg.gauge("b")
    assert reg.histogram("c") is reg.histogram("c")
    reg.counter("a").inc(2)
    reg.histogram("c").observe(0.5)
    snap = reg.snapshot()
    reg.counter("a").inc(10)
    assert snap["a"].value == 2
    dump = reg.to_dict()
    assert dump["a"]["kind"] == "counter"
    assert dump["c"]["kind"] == "histogram"
    assert dump["c"]["count"] == 1
    reg.reset()
    assert reg.counter("a").value == 0


def test_histogram_quantile_edges_are_finite_and_pinned():
    hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
    for value in (1.5, 1.7, 3.0):
        hist.observe(value)
    # q <= 0 pins to the lower edge of the first occupied bucket
    assert hist.quantile(0.0) == 1.0
    assert hist.quantile(-0.5) == 1.0
    # q >= 1 pins to the exact observed maximum
    assert hist.quantile(1.0) == 3.0
    assert hist.quantile(2.0) == 3.0
    # interior quantiles stay within [min-edge, max]
    for q in (0.25, 0.5, 0.75, 0.99):
        assert 1.0 <= hist.quantile(q) <= 3.0


def test_histogram_quantile_all_mass_in_overflow_bucket():
    hist = Histogram("h", bounds=(1.0, 2.0))
    hist.observe(10.0)
    hist.observe(50.0)
    # interpolation runs between the last bound and the observed max —
    # finite, never +Inf
    import math
    for q in (0.0, 0.3, 0.5, 0.9, 1.0):
        value = hist.quantile(q)
        assert math.isfinite(value)
        assert 2.0 <= value <= 50.0
    assert hist.quantile(1.0) == 50.0
    assert hist.quantile(0.0) == 2.0


def test_histogram_empty_is_zero_for_every_q():
    empty = Histogram("h")
    for q in (-1.0, 0.0, 0.5, 1.0, 2.0):
        assert empty.quantile(q) == 0.0
