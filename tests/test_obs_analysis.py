"""Latency attribution: the sum-to-total invariant and its views."""

import pytest

from repro.bench.harness import VariantResult, measured_variant
from repro.constants import GIB, KIB, MIB
from repro.core import FragPicker
from repro.device import make_device
from repro.fs import make_filesystem
from repro.obs import analysis, hooks
from repro.obs.hooks import Instrumentation
from repro.workloads.synthetic import make_paper_synthetic_file, sequential_read


@pytest.fixture(autouse=True)
def _restore_global_instrumentation():
    yield
    hooks.disable()


def _mixed_workload(fs, now=0.0):
    """Reads + writes through every modeled path (direct and buffered)."""
    direct = fs.open("/direct", o_direct=True, create=True)
    now = fs.write(direct, 0, 2 * MIB, now=now).finish_time
    now = fs.read(direct, 0, 2 * MIB, now=now).finish_time
    buffered = fs.open("/buffered", create=True)
    now = fs.write(buffered, 0, 1 * MIB, now=now).finish_time
    now = fs.fsync(buffered, now=now).finish_time
    now = fs.read(buffered, 0, 1 * MIB, now=now).finish_time
    now = fs.unlink("/direct", now=now).finish_time
    return now


@pytest.mark.parametrize("device_kind", ["hdd", "microsd", "flash", "optane"])
def test_invariant_holds_on_every_device_model(device_kind):
    with hooks.use(Instrumentation()) as obs:
        device = make_device(device_kind, capacity=1 * GIB)
        fs = make_filesystem("ext4", device)
        _mixed_workload(fs)
        attribution = analysis.attribute(obs.registry)
    assert attribution.total > 0
    assert attribution.check(tolerance=0.01), (
        f"{device_kind}: residual {attribution.residual} "
        f"of total {attribution.total}"
    )
    # the residual is float noise, not a modeling gap
    assert abs(attribution.residual) < 1e-9 * max(1.0, attribution.total)


@pytest.mark.parametrize("fs_type", ["ext4", "f2fs", "btrfs"])
def test_invariant_holds_on_every_fs_personality(fs_type):
    with hooks.use(Instrumentation()) as obs:
        device = make_device("flash", capacity=1 * GIB)
        fs = make_filesystem(fs_type, device)
        _mixed_workload(fs)
        attribution = analysis.attribute(obs.registry)
    assert attribution.total > 0
    assert attribution.check(tolerance=0.01)


def test_components_cover_device_character():
    """Seek-dominated devices must show penalty time; optane must not."""
    def run_on(kind):
        with hooks.use(Instrumentation()) as obs:
            device = make_device(kind, capacity=1 * GIB)
            fs = make_filesystem("ext4", device)
            make_paper_synthetic_file(fs, "/target", 8 * MIB)
            sequential_read(fs, "/target", now=0.0)
            return analysis.attribute(obs.registry)

    hdd = run_on("hdd")
    optane = run_on("optane")
    assert hdd.components["device_penalty"] > 0
    assert optane.components["device_penalty"] == 0.0
    assert hdd.check() and optane.check()


def test_split_cost_collapses_after_defragmentation():
    """The paper's core claim, visible in the attribution: defragmenting a
    shredded file removes the request-split fan-out cost."""
    def measure(defrag):
        with hooks.use(Instrumentation()) as obs:
            device = make_device("optane", capacity=1 * GIB)
            fs = make_filesystem("ext4", device)
            now = make_paper_synthetic_file(fs, "/target", 8 * MIB)
            if defrag:
                picker = FragPicker(fs)
                now = picker.defragment_bypass(["/target"], now=now).finished_at
            baseline = obs.registry.snapshot()
            sequential_read(fs, "/target", now=now)
            window = analysis.delta_metrics(obs.registry, baseline)
        return analysis.attribute(window)

    fragmented = measure(defrag=False)
    contiguous = measure(defrag=True)
    assert fragmented.check() and contiguous.check()
    assert fragmented.components["split_cost"] > 0
    # after migration the file is one extent: one command per request
    assert contiguous.components["split_cost"] == pytest.approx(0.0, abs=1e-12)
    assert contiguous.total < fragmented.total


def test_attribute_accepts_json_metrics_roundtrip():
    with hooks.use(Instrumentation()) as obs:
        device = make_device("flash", capacity=1 * GIB)
        fs = make_filesystem("ext4", device)
        _mixed_workload(fs)
        live = analysis.attribute(obs.registry)
        dumped = obs.registry.to_dict()
    from_json = analysis.attribute(dumped)
    assert from_json.total == pytest.approx(live.total)
    assert from_json.components == pytest.approx(live.components)
    doc = from_json.to_dict()
    assert doc["schema"] == "repro.obs.attribution/v1"
    assert doc["ok"] is True


def test_attribution_table_lists_every_component():
    with hooks.use(Instrumentation()) as obs:
        device = make_device("hdd", capacity=1 * GIB)
        fs = make_filesystem("ext4", device)
        _mixed_workload(fs)
        table = analysis.attribute(obs.registry).table()
    for key, _, _ in analysis.COMPONENTS:
        assert key in table
    assert "(total measured)" in table


def test_measured_variant_attaches_metrics_and_attribution():
    with hooks.use(Instrumentation()):
        device = make_device("optane", capacity=1 * GIB)
        fs = make_filesystem("ext4", device)
        handle = fs.open("/warmup", o_direct=True, create=True)
        fs.write(handle, 0, 256 * KIB)  # traffic before the window opens
        with measured_variant("unit") as window:
            inner = fs.open("/inner", o_direct=True, create=True)
            fs.write(inner, 0, 512 * KIB)
    assert window.metrics is not None
    assert window.attribution is not None
    # the window excludes the warmup traffic: totals reflect 512 KiB only
    windowed = analysis.attribute(window.metrics)
    assert windowed.check()
    assert window.attribution["total_s"] == pytest.approx(windowed.total)
    fanout = window.fanout_summary()
    assert fanout["count"] >= 1


def test_measured_variant_is_inert_when_obs_disabled():
    with measured_variant("off") as window:
        pass
    assert window.metrics is None and window.attribution is None
    assert isinstance(window, VariantResult)
