"""Conventional defragmenters: e4defrag, btrfs.defragment (-t), f2fs mimic."""

import pytest

from repro.constants import GIB, KIB, MIB
from repro.core import FragPicker
from repro.device import make_device
from repro.fs import make_filesystem
from repro.tools import btrfs_defragment, e4defrag, f2fs_defrag, make_conventional
from repro.workloads.synthetic import make_paper_synthetic_file


def build(fs_type="ext4", device="optane"):
    fs = make_filesystem(fs_type, make_device(device, capacity=1 * GIB))
    now = make_paper_synthetic_file(fs, "/data", 1 * MIB)
    return fs, now


def test_e4defrag_migrates_whole_file():
    fs, now = build()
    report = e4defrag(fs).defragment(["/data"], now=now)
    assert report.write_bytes >= 1 * MIB  # the whole file, plus journal
    assert fs.inode_of("/data").fragment_count() == 1
    assert report.ranges_migrated == 1


def test_e4defrag_reads_in_4k():
    fs, now = build()
    before = fs.tracer.tag("defrag").snapshot()
    e4defrag(fs).defragment(["/data"], now=now)
    delta = fs.tracer.tag("defrag").delta(before)
    # 4 KiB syscalls: at least one read command per 4 KiB of data
    assert delta.read_commands >= (1 * MIB) // (4 * KIB)


def test_contiguous_file_skipped():
    fs = make_filesystem("ext4", make_device("optane", capacity=1 * GIB))
    handle = fs.open("/clean", o_direct=True, create=True)
    now = fs.write(handle, 0, 1 * MIB).finish_time
    report = e4defrag(fs).defragment(["/clean"], now=now)
    assert report.ranges_migrated == 0
    assert report.write_bytes == 0


def test_missing_file_ignored():
    fs, now = build()
    report = e4defrag(fs).defragment(["/nope", "/data"], now=now)
    assert report.files_examined == 1


def test_btrfs_threshold_skips_big_extents():
    fs = make_filesystem("btrfs", make_device("optane", capacity=1 * GIB))
    now = make_paper_synthetic_file(fs, "/data", 1 * MIB)
    tool = btrfs_defragment(fs, extent_threshold=128 * KIB)
    report = tool.defragment(["/data"], now=now)
    full = btrfs_defragment(fs)
    # only the 4 KiB runs were rewritten: half the bytes
    assert report.write_bytes < 0.7 * (1 * MIB)
    # the 128 KiB extents survive in place
    big = [e for e in fs.inode_of("/data").extent_map if e.length >= 128 * KIB]
    assert big


def test_f2fs_mimic_rewrites():
    fs = make_filesystem("f2fs", make_device("flash", capacity=1 * GIB))
    now = make_paper_synthetic_file(fs, "/data", 1 * MIB)
    frags_before = fs.inode_of("/data").fragment_count()
    report = f2fs_defrag(fs).defragment(["/data"], now=now)
    assert fs.inode_of("/data").fragment_count() < frags_before / 10
    assert fs.ipu_enabled  # restored


def test_make_conventional_picks_by_fs_type():
    for fs_type, expected in (("ext4", "e4defrag"), ("btrfs", "btrfs.defragment"), ("f2fs", "f2fs-defrag")):
        fs = make_filesystem(fs_type, make_device("optane", capacity=1 * GIB))
        assert make_conventional(fs).tool_name == expected


def test_conventional_writes_more_than_fragpicker():
    fs, now = build()
    conv_report = e4defrag(fs).defragment(["/data"], now=now)
    fs2, now2 = build()
    fp_report = FragPicker(fs2).defragment_bypass(["/data"], now=now2)
    assert fp_report.write_bytes < conv_report.write_bytes


def test_actor_form_equivalent():
    from repro.core.report import DefragReport
    from repro.sim import run_concurrently

    fs, now = build()
    sync_report = e4defrag(fs).defragment(["/data"], now=now)
    fs2, now2 = build()
    actor_report = DefragReport(tool="e4defrag")
    run_concurrently(
        {"bg": e4defrag(fs2).actor(["/data"], report_out=actor_report)}, start=now2
    )
    assert actor_report.write_bytes == sync_report.write_bytes
    assert actor_report.ranges_migrated == sync_report.ranges_migrated
