"""Page-mapping FTL: mapping, striping, invalidation, GC, wear."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.device.ftl import PageMappingFtl
from repro.errors import DeviceError


def small_ftl(logical_pages=1024, channels=4, pages_per_block=16):
    return PageMappingFtl(
        logical_pages=logical_pages,
        channels=channels,
        pages_per_block=pages_per_block,
        overprovision=0.25,
    )


def test_unwritten_pages_stripe_by_address():
    ftl = small_ftl(channels=4)
    assert [ftl.channel_of(i) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]


def test_writes_stripe_round_robin():
    ftl = small_ftl(channels=4)
    result = ftl.write(list(range(8)))
    assert result.pages_per_channel == {0: 2, 1: 2, 2: 2, 3: 2}


def test_mapping_follows_write():
    ftl = small_ftl(channels=4)
    ftl.write([100])  # first write goes to channel 0
    assert ftl.channel_of(100) == 0
    ftl.write([100])  # rewrite lands on the next channel
    assert ftl.channel_of(100) == 1


def test_overwrite_invalidates_old_page():
    ftl = small_ftl()
    ftl.write([5])
    block, _ = ftl.mapping[5]
    assert block.valid_count == 1
    ftl.write([5])
    assert block.valid_count == 0


def test_invalidate_discard():
    ftl = small_ftl()
    ftl.write([1, 2, 3])
    dropped = ftl.invalidate([1, 2, 3, 4])
    assert dropped == 3
    assert 1 not in ftl.mapping
    # discarded pages read as address-striped again
    assert ftl.channel_of(1) == 1


def test_write_beyond_capacity_rejected():
    ftl = small_ftl(logical_pages=10)
    with pytest.raises(DeviceError):
        ftl.write([10])


def test_gc_reclaims_invalid_pages():
    ftl = small_ftl(logical_pages=128, channels=1, pages_per_block=8)
    # overwrite a small working set far beyond physical capacity
    for _ in range(40):
        ftl.write(list(range(16)))
    assert ftl.total_erases > 0
    assert ftl.write_amplification >= 1.0
    # mapping stays consistent through GC
    for lpn in range(16):
        block, slot = ftl.mapping[lpn]
        assert block.pages[slot] == lpn


def test_write_amplification_grows_under_pressure():
    """Cold data interleaved with hot churn forces GC relocations."""
    tight = small_ftl(logical_pages=64, channels=1, pages_per_block=8)
    # lay down cold (0..31) and hot (32..47) pages interleaved, so every
    # erase block holds some never-invalidated cold pages
    interleaved = [p for pair in zip(range(32), range(32, 48)) for p in pair]
    tight.write(interleaved + list(range(16, 32)))
    for _ in range(60):
        tight.write(list(range(32, 48)))  # churn only the hot set
    assert tight.total_erases > 0
    assert tight.write_amplification > 1.0
    assert tight.relocated_pages_total > 0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 63), min_size=1, max_size=300))
def test_mapping_always_consistent(lpns):
    """Model check: after any write sequence, every mapped lpn's slot
    holds that lpn, and valid counts match the mapping."""
    ftl = small_ftl(logical_pages=64, channels=2, pages_per_block=8)
    for lpn in lpns:
        ftl.write([lpn])
    for lpn, (block, slot) in ftl.mapping.items():
        assert block.pages[slot] == lpn
    assert len(ftl.mapping) == len(set(lpns))
    assert ftl.host_pages_written == len(lpns)
