"""Windowed telemetry rollups: geometry, queries, bounded retention."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    TimeSeriesStore,
    WindowedSeries,
    nearest_rank,
)


def test_nearest_rank_is_deterministic_and_clamped():
    ordered = [1.0, 2.0, 3.0, 4.0]
    assert nearest_rank(ordered, 0.5) == 2.0
    assert nearest_rank(ordered, 1.0) == 4.0
    assert nearest_rank(ordered, 0.0) == 1.0
    assert nearest_rank(ordered, -1.0) == 1.0
    assert nearest_rank(ordered, 2.0) == 4.0
    assert nearest_rank([], 0.5) == 0.0


def test_window_geometry_keyed_to_virtual_clock():
    series = WindowedSeries("lat", width=0.25)
    assert series.index_of(0.0) == 0
    assert series.index_of(0.24) == 0
    assert series.index_of(0.25) == 1
    assert series.index_of(1.1) == 4
    # pre-origin times clamp into window 0 rather than going negative
    assert series.index_of(-5.0) == 0
    assert series.window_end(0) == 0.25
    assert series.window_end(3) == 1.0


def test_windowed_series_rollup_and_queries():
    series = WindowedSeries("ops", width=1.0)
    for t, v in [(0.1, 2.0), (0.9, 4.0), (1.5, 10.0)]:
        series.observe(t, v)
    assert series.indexes() == [0, 1]
    w0 = series.window(0)
    assert w0.count == 2
    assert w0.total == 6.0
    assert w0.min == 2.0 and w0.max == 4.0 and w0.last == 4.0
    assert w0.mean == 3.0
    assert series.deltas() == [(0, 6.0), (1, 10.0)]
    assert series.rate() == [(0, 6.0), (1, 10.0)]
    assert series.percentile(0, 0.5) == 2.0
    assert series.percentile(0, 1.0) == 4.0
    assert series.percentile(7, 0.5) == 0.0  # absent window
    assert series.window(7) is None


def test_window_eviction_counts_drops():
    series = WindowedSeries("x", width=1.0, max_windows=3)
    for index in range(6):
        series.observe_at(index, 1.0)
    assert series.indexes() == [3, 4, 5]
    assert series.dropped_windows == 3
    assert series.to_dict()["dropped_windows"] == 3


def test_per_window_value_retention_counts_drops():
    series = WindowedSeries("x", width=1.0, max_values=2)
    for value in (5.0, 1.0, 9.0, 3.0):
        series.observe_at(0, value)
    agg = series.window(0)
    # count/sum/min/max stay exact, only the percentile pool is capped
    assert agg.count == 4
    assert agg.total == 18.0
    assert agg.min == 1.0 and agg.max == 9.0
    assert agg.dropped_values == 2
    assert agg.values == [5.0, 1.0]


def test_width_must_be_positive():
    with pytest.raises(ValueError):
        WindowedSeries("x", width=0.0)
    with pytest.raises(ValueError):
        TimeSeriesStore(width=-1.0)


def test_store_get_or_create_and_shared_geometry():
    store = TimeSeriesStore(width=0.5)
    store.observe("a", 0.1, 1.0)
    store.observe("b", 0.6, 2.0)
    assert store.names() == ["a", "b"]
    assert "a" in store and "zzz" not in store
    assert store.series("a") is store.series("a")
    assert store.series("b").width == 0.5
    doc = store.to_dict()
    assert doc["schema"] == "repro.obs.timeseries/v1"
    assert set(doc["series"]) == {"a", "b"}


def test_ingest_registry_windows_counter_deltas_and_histograms():
    store = TimeSeriesStore(width=1.0)
    registry = MetricsRegistry()
    registry.counter("ops").inc(10)
    registry.gauge("depth").set(3.0)
    registry.histogram("lat").observe(0.5)

    snap = store.ingest_registry(registry, now=0.5)
    registry.counter("ops").inc(7)
    registry.gauge("depth").set(1.0)
    registry.histogram("lat").observe(1.5)
    store.ingest_registry(registry, now=1.5, last_snapshot=snap)

    # counters window as deltas: 10 then 7
    assert store.series("ops").deltas() == [(0, 10.0), (1, 7.0)]
    # gauges window as raw readings
    assert store.series("depth").deltas() == [(0, 3.0), (1, 1.0)]
    # histograms window their count and sum deltas
    assert store.series("lat.count").deltas() == [(0, 1.0), (1, 1.0)]
    assert store.series("lat.sum").deltas() == [(0, 0.5), (1, 1.5)]


def test_same_points_produce_identical_rollups():
    points = [(0.07 * i, float(i % 5)) for i in range(100)]
    docs = []
    for _ in range(2):
        store = TimeSeriesStore(width=0.25)
        for t, v in points:
            store.observe("s", t, v)
        docs.append(store.to_dict())
    assert docs[0] == docs[1]
