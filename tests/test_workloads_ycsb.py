"""YCSB-style workloads."""

import pytest

from repro.constants import GIB, KIB
from repro.device import make_device
from repro.errors import InvalidArgument
from repro.fs import make_filesystem
from repro.sim import run_concurrently
from repro.workloads.kvstore import LsmConfig, LsmStore
from repro.workloads.ycsb import WORKLOAD_A, WORKLOAD_C, YcsbConfig, YcsbWorkload


def make(config):
    fs = make_filesystem("ext4", make_device("optane", capacity=1 * GIB))
    store = LsmStore(fs, LsmConfig(block_size=32 * KIB, memtable_bytes=256 * KIB))
    return YcsbWorkload(store, config)


def test_proportions_validated():
    with pytest.raises(InvalidArgument):
        YcsbConfig(read_proportion=0.5, update_proportion=0.2)


def test_unknown_distribution():
    with pytest.raises(InvalidArgument):
        make(YcsbConfig(record_count=10, distribution="pareto"))


def test_load_inserts_all_records():
    workload = make(YcsbConfig(record_count=300, value_size=128))
    now = workload.load(0.0)
    now, value = workload.store.get(b"user%012d" % 299, now)
    assert value is not None and len(value) == 128


def test_workload_c_is_read_only():
    workload = make(YcsbConfig(record_count=200, value_size=64,
                               read_proportion=1.0, update_proportion=0.0))
    now = workload.load(0.0)
    puts_before = workload.store.stats.puts
    now, ops_per_sec = workload.run_ops(100, now)
    assert workload.store.stats.puts == puts_before
    assert ops_per_sec > 0


def test_workload_a_mixes():
    workload = make(YcsbConfig(record_count=200, value_size=64,
                               read_proportion=0.5, update_proportion=0.5))
    now = workload.load(0.0)
    puts_before = workload.store.stats.puts
    gets_before = workload.store.stats.gets
    now, _ = workload.run_ops(200, now)
    puts = workload.store.stats.puts - puts_before
    gets = workload.store.stats.gets - gets_before
    assert 40 < puts < 160
    assert puts + gets == 200


def test_actor_respects_op_budget():
    workload = make(YcsbConfig(record_count=100, value_size=64))
    now = workload.load(0.0)
    contexts = run_concurrently({"ycsb": workload.actor(max_ops=50)}, start=now)
    assert len(contexts["ycsb"].timeline.events) == 50


def test_actor_requires_bound():
    workload = make(YcsbConfig(record_count=10, value_size=16))
    with pytest.raises(InvalidArgument):
        workload.actor()


def test_presets():
    assert WORKLOAD_A.update_proportion == 0.5
    assert WORKLOAD_C.read_proportion == 1.0
