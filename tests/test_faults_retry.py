"""Graceful degradation: bounded retry, skip-and-report, crash propagation."""

import pytest

from repro.constants import GIB, KIB
from repro.core import FragPicker, FragPickerConfig, RetryPolicy
from repro.device import make_device
from repro.errors import InjectedCrash
from repro.faults import FaultPlan, hooks
from repro.fs import make_filesystem
from repro.obs import hooks as obs_hooks
from repro.obs.hooks import Instrumentation


@pytest.fixture(autouse=True)
def _disarm_after():
    yield
    hooks.disarm()
    obs_hooks.disable()


def fragmented_fs(plan, files=1, pieces=8):
    """Filesystem + fragmented paths, built under an (inactive) plane."""
    plane = hooks.arm(plan, active=False)
    fs = make_filesystem("ext4", make_device("optane", capacity=1 * GIB))
    now = 0.0
    paths = []
    for f in range(files):
        path = f"/r/f{f}"
        handle = fs.open(path, o_direct=True, create=True)
        dummy = fs.open(path + ".d", o_direct=True, create=True)
        for i in range(pieces):
            payload = bytes([(f * pieces + i) % 251 + 1]) * (4 * KIB)
            now = fs.write(handle, i * 4 * KIB, data=payload, now=now).finish_time
            now = fs.write(dummy, i * 4 * KIB, 4 * KIB, now=now).finish_time
        paths.append(path)
    return fs, plane, paths, now


def contents(fs, paths):
    return {
        p: fs.page_store.read(fs.inode_of(p).ino, 0, fs.inode_of(p).size)
        for p in paths
    }


def test_retry_policy_backoff_grows():
    policy = RetryPolicy(attempts=4, backoff=0.002, multiplier=2.0)
    assert policy.delay(0) == pytest.approx(0.002)
    assert policy.delay(1) == pytest.approx(0.004)
    assert policy.delay(2) == pytest.approx(0.008)


def test_transient_fault_is_retried_and_succeeds():
    fs, plane, paths, now = fragmented_fs(FaultPlan().io_error("fs.write"))
    before = contents(fs, paths)
    picker = FragPicker(fs)
    plane.activate()
    report = picker.defragment_bypass(paths, now=now)
    assert report.retries == 1
    assert report.ranges_failed == 0
    assert report.failures == {}
    assert len(picker.journal) == 0
    assert contents(fs, paths) == before
    assert "1 retries" in report.summary()


def test_exhausted_retries_skip_and_report():
    # every fs.write fails, forever: the repair also faults, so the file
    # is skipped immediately and its journal entries stay pending
    plan = FaultPlan().io_error("fs.write", max_fires=0)
    fs, plane, paths, now = fragmented_fs(plan, files=2)
    before = contents(fs, paths)
    picker = FragPicker(fs)
    plane.activate()
    report = picker.defragment_bypass(paths, now=now)
    assert report.ranges_failed == len(paths)
    assert sorted(report.failures) == sorted(paths)
    assert len(picker.journal) > 0  # pending, not lost
    # operator-level recovery after the storm restores every byte
    plane.deactivate()
    picker.journal.recover(fs, now=report.finished_at)
    assert len(picker.journal) == 0
    assert contents(fs, paths) == before


def test_retry_budget_is_bounded():
    # fallocate faults don't break the repair path (which re-allocates
    # via recover's own fallocate... also matching!) — use fiemap instead,
    # which recovery never calls, to isolate the retry counter
    plan = FaultPlan().io_error("fs.fiemap", max_fires=0)
    config = FragPickerConfig(retry=RetryPolicy(attempts=3))
    fs, plane, paths, now = fragmented_fs(plan)
    picker = FragPicker(fs, config)
    plane.activate()
    report = picker.defragment_bypass(paths, now=now)
    assert report.retries == 2          # attempts - 1 retries, then give up
    assert report.ranges_failed == 1


def test_injected_crash_is_never_retried():
    plan = FaultPlan().crash("fs", after_ops=5)
    fs, plane, paths, now = fragmented_fs(plan)
    picker = FragPicker(fs)
    plane.activate()
    with pytest.raises(InjectedCrash):
        picker.defragment_bypass(paths, now=now)


def test_degradation_is_visible_in_obs():
    plan = FaultPlan().io_error("fs.fiemap", max_fires=0)
    with obs_hooks.use(Instrumentation()) as obs:
        # layers capture obs at construction: build everything inside
        fs, plane, paths, now = fragmented_fs(plan)
        picker = FragPicker(fs)
        plane.activate()
        picker.defragment_bypass(paths, now=now)
    reg = obs.registry
    assert reg.counter("fragpicker.migration_retries").value == 2
    assert reg.counter("fragpicker.migrations_failed").value == 1
    assert reg.counter("faults.injected.total").value == 3


def test_recovery_metrics_are_recorded():
    plan = FaultPlan().io_error("fs.write")
    with obs_hooks.use(Instrumentation()) as obs:
        fs, plane, paths, now = fragmented_fs(plan)
        picker = FragPicker(fs)
        plane.activate()
        picker.defragment_bypass(paths, now=now)
    assert obs.registry.counter("recovery.entries_replayed").value >= 1
    assert obs.registry.counter("recovery.bytes_restored").value >= 4 * KIB
