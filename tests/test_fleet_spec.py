"""Seed-keyed fleet specs: reproducible, valid, and policy-compliant."""

import pytest

from repro.errors import InvalidArgument
from repro.fleet import FleetConfig, make_volume_specs
from repro.fleet.spec import DEVICE_MIX, FS_MIX, PROFILES, WORKLOADS


def test_same_seed_same_specs():
    config = FleetConfig(volumes=16, seed=11)
    assert make_volume_specs(config) == make_volume_specs(config)


def test_different_seeds_differ():
    a = make_volume_specs(FleetConfig(volumes=16, seed=1))
    b = make_volume_specs(FleetConfig(volumes=16, seed=2))
    assert a != b


def test_specs_are_valid_and_hdd_free():
    specs = make_volume_specs(FleetConfig(volumes=32, seed=3))
    assert len(specs) == 32
    names = {p[0] for p in PROFILES}
    for spec in specs:
        assert spec.fs_type in FS_MIX
        assert spec.device in DEVICE_MIX
        assert spec.device != "hdd"  # Section 6: no seek-time devices
        assert spec.profile in names
        assert spec.workload in WORKLOADS
        assert 3 <= len(spec.files) <= 5
        for f in spec.files:
            assert f.piece <= f.size


def test_volume_zero_is_always_heavy():
    for seed in range(5):
        specs = make_volume_specs(FleetConfig(volumes=2, seed=seed))
        assert specs[0].profile == "heavy"


def test_prefix_stability_when_growing_the_fleet():
    # adding volumes never perturbs existing volumes' draws
    small = make_volume_specs(FleetConfig(volumes=8, seed=5))
    large = make_volume_specs(FleetConfig(volumes=16, seed=5))
    assert large[:8] == small


@pytest.mark.parametrize("overrides", [
    {"volumes": -1},
    {"ticks": 0},
    {"tick_seconds": 0.0},
    {"budget_per_tick": 0},
    {"max_jobs": 0},
    {"trigger": 0.0},
    {"fg_ops_per_tick": -1},
])
def test_config_validation(overrides):
    with pytest.raises(InvalidArgument):
        FleetConfig(**overrides)


def test_smoke_config_is_smaller():
    smoke = FleetConfig.smoke()
    full = FleetConfig()
    assert smoke.volumes < full.volumes
    assert smoke.ticks < full.ticks
    assert smoke.budget_per_tick < full.budget_per_tick
