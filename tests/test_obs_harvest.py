"""The cross-process telemetry harvest: capture, merge, and parity.

Unit-level: TelemetrySnapshot must carry metrics in raw (mergeable)
form, land worker spans/events on namespaced tracks, keep drop tallies,
and re-base provenance pids.  Plan-level: an armed parent must export
byte-identical telemetry whether a plan ran serially or across spawned
workers — the property every armed ``--workers N`` verb rests on.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import export, harvest
from repro.obs import hooks as obs_hooks
from repro.obs.harvest import SNAPSHOTS_MERGED, HarvestSpec, TelemetrySnapshot
from repro.obs.hooks import Instrumentation
from repro.par import run_sharded


# ----------------------------------------------------------------------
# module-level shard functions (must pickle into spawn workers)
# ----------------------------------------------------------------------

def _emit(x):
    """One shard's worth of telemetry: metrics, a span, a ring event."""
    obs = obs_hooks.current()
    obs.registry.counter("t.count").inc(x + 1)
    gauge = obs.registry.gauge("t.depth")
    gauge.set(float(x + 3))
    gauge.set(float(x))
    obs.registry.histogram("t.lat", bounds=(0.1, 1.0)).observe(0.05 * (x + 1))
    obs.spans.adopt("t.work", 0.0, float(x + 1), attrs={"shard": x})
    obs.spans.event("t.tick", float(x), tag=x)
    return x * x


def _square(x):
    return x * x


def _nested(x):
    """A shard that itself fans out: its inner plan's par.* counters and
    harvest merges happen worker-side and must surface in the parent."""
    return sum(run_sharded(_square, [x, x + 1]))


# ----------------------------------------------------------------------
# snapshot capture
# ----------------------------------------------------------------------

def test_capture_carries_metrics_spans_events_in_raw_form():
    obs = Instrumentation()
    with obs_hooks.use(obs):
        _emit(2)
    snapshot = harvest.capture(obs)
    assert ("t.count", 3.0) in snapshot.counters
    assert ("t.depth", 2.0, 5.0) in snapshot.gauges
    (name, bounds, counts, count, total, max_value) = next(
        h for h in snapshot.histograms if h[0] == "t.lat"
    )
    assert bounds == (0.1, 1.0)
    assert count == 1 and counts[1] == 1  # 0.15 lands in the second bucket
    assert snapshot.spans == [("t.work", 0.0, 3.0, "main", {"shard": 2})]
    assert snapshot.events == [("t.tick", 2.0, "main", {"tag": 2})]
    assert not snapshot.empty()


def test_capture_delta_over_baseline():
    obs = Instrumentation()
    obs.registry.counter("t.count").inc(10)
    baseline = obs.registry.snapshot()
    obs.registry.counter("t.count").inc(4)
    snapshot = harvest.capture(obs, baseline)
    assert ("t.count", 4.0) in snapshot.counters


def test_harvest_spec_mirrors_parent_configuration():
    parent = Instrumentation(max_spans=7, max_events=16, provenance=True)
    child = HarvestSpec.from_obs(parent).child()
    assert child.spans.max_spans == 7
    assert child.spans.events.maxlen == 16
    assert child.provenance is not None
    plain = harvest.child_of(Instrumentation())
    assert plain.provenance is None


# ----------------------------------------------------------------------
# snapshot merge
# ----------------------------------------------------------------------

def test_merge_sums_counters_and_keeps_gauge_peak():
    parent = Instrumentation()
    parent.registry.counter("t.count").inc(5)
    gauge = parent.registry.gauge("t.depth")
    gauge.set(3.0)

    worker = Instrumentation()
    with obs_hooks.use(worker):
        _emit(1)  # counter +2, gauge value 1 / peak 4
    harvest.capture(worker).merge_into(parent, track_prefix="shard0/")

    metrics = parent.registry.to_dict()
    assert metrics["t.count"]["value"] == 7.0
    assert metrics["t.depth"]["value"] == 1.0  # last shard's reading
    assert metrics["t.depth"]["peak"] == 4.0  # true cross-shard peak
    assert metrics[SNAPSHOTS_MERGED]["value"] == 1
    # spans/events landed on the namespaced track, drops carried (none)
    assert [s.track for s in parent.spans.finished_spans()] == ["shard0/main"]
    assert [e.track for e in parent.spans.events] == ["shard0/main"]


def test_merge_adds_histograms_bucket_wise_and_rejects_bounds_mismatch():
    parent = Instrumentation()
    parent.registry.histogram("t.lat", bounds=(0.1, 1.0)).observe(0.5)
    worker = Instrumentation()
    worker.registry.histogram("t.lat", bounds=(0.1, 1.0)).observe(0.05)
    worker.registry.histogram("t.lat", bounds=(0.1, 1.0)).observe(2.0)
    harvest.capture(worker).merge_into(parent)
    hist = parent.registry.histogram("t.lat")
    assert hist.count == 3
    assert hist.max_value == 2.0
    assert hist.total == pytest.approx(2.55)

    mismatched = Instrumentation()
    mismatched.registry.histogram("t.lat", bounds=(0.5,)).observe(0.2)
    with pytest.raises(ValueError, match="bounds"):
        harvest.capture(mismatched).merge_into(parent)


def test_merge_applies_time_base_and_drop_tallies():
    parent = Instrumentation()
    snapshot = TelemetrySnapshot(
        spans=[("t.work", 1.0, 2.0, "main", {})],
        events=[("t.tick", 1.5, "main", {})],
        dropped_spans=3,
        dropped_events=8,
    )
    snapshot.merge_into(parent, track_prefix="shard4/", time_base=10.0)
    (span,) = parent.spans.finished_spans()
    assert (span.start, span.end, span.track) == (11.0, 12.0, "shard4/main")
    (event,) = parent.spans.events
    assert (event.time, event.track) == (11.5, "shard4/main")
    assert parent.spans.dropped_spans == 3
    assert parent.spans.dropped_events == 8


def test_merge_rebases_provenance_pids_past_parent_minted():
    parent = Instrumentation(provenance=True)
    for _ in range(4):
        parent.provenance.mint()
    snapshot = TelemetrySnapshot(
        events=[
            ("prov.syscall", 0.5, "prov.fs", {"pid": 2, "op": "read"}),
            ("t.tick", 0.6, "main", {"pid": 0}),  # untracked: untouched
        ],
        provenance_minted=2,
    )
    snapshot.merge_into(parent)
    assert parent.provenance.minted == 6
    prov_event, plain_event = parent.spans.events
    assert prov_event.attrs["pid"] == 6  # 2 shifted past the parent's 4
    assert plain_event.attrs["pid"] == 0


def test_merge_into_disabled_obs_is_a_no_op():
    null = obs_hooks.NULL
    snapshot = TelemetrySnapshot(counters=[("t.count", 1.0)])
    snapshot.merge_into(null)  # must not raise, must not record


# ----------------------------------------------------------------------
# plan-level parity: armed serial == armed workers
# ----------------------------------------------------------------------

def _run_plan(workers):
    obs = Instrumentation()
    with obs_hooks.use(obs):
        results = run_sharded(_emit, [0, 1, 2], workers=workers, label="t")
    return results, obs


def _renderings(obs):
    return (
        export.metrics_json(obs.registry),
        export.prometheus_text(obs.registry),
        json.dumps(export.chrome_trace(obs.spans, obs.registry)),
    )


def test_armed_plan_is_byte_identical_serial_vs_workers():
    serial_results, serial_obs = _run_plan(None)
    par_results, par_obs = _run_plan(2)
    assert par_results == serial_results == [0, 1, 4]
    assert _renderings(par_obs) == _renderings(serial_obs)
    # the merged plane actually carries every shard's telemetry
    metrics = serial_obs.registry.to_dict()
    assert metrics["t.count"]["value"] == 6.0
    assert metrics[SNAPSHOTS_MERGED]["value"] == 3
    tracks = {s.track for s in serial_obs.spans.finished_spans()}
    assert tracks == {"shard0/main", "shard1/main", "shard2/main"}


def test_worker_side_par_counters_surface_in_parent_export():
    obs = Instrumentation()
    with obs_hooks.use(obs):
        results = run_sharded(_nested, [1, 2], workers=2)
    assert results == [1 + 4, 4 + 9]
    metrics = obs.registry.to_dict()
    # one outer plan mirrored by the parent + one inner (worker-side,
    # serial) plan per shard, harvested back through the snapshot
    assert metrics["par.plans"]["value"] == 3
    assert metrics["par.shards"]["value"] == 2 + 4
    # inner merges counted worker-side (2 per shard) ride back as
    # counters, plus one increment per outer snapshot merge
    assert metrics[SNAPSHOTS_MERGED]["value"] == 6
    assert export.metric_help("par.shards") is not None


def test_unarmed_parent_skips_harvest_entirely():
    results = run_sharded(_square, [2, 3], workers=None)
    assert results == [4, 9]
    assert obs_hooks.current() is obs_hooks.NULL
