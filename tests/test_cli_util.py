"""Shared document-verb wiring used by bench, perf, and fleet."""

import argparse

from repro import cli_util
from repro.bench.regression import Comparison


def _parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--smoke", action="store_true")
    cli_util.add_document_args(parser, "TEST", "TEST", threshold=0.15)
    return parser


def test_document_path_defaults():
    args = _parser().parse_args([])
    assert cli_util.document_path(args, "TEST") == ("full", "TEST_full.json")
    args = _parser().parse_args(["--smoke"])
    assert cli_util.document_path(args, "TEST") == ("smoke", "TEST_smoke.json")
    args = _parser().parse_args(["--smoke", "--label", "ci"])
    assert cli_util.document_path(args, "TEST") == ("ci", "TEST_ci.json")
    args = _parser().parse_args(["--json", "out.json"])
    assert cli_util.document_path(args, "TEST") == ("full", "out.json")
    # bare --json means "the default path" (used by `repro fleet --json`)
    args = _parser().parse_args(["--json"])
    assert cli_util.document_path(args, "TEST") == ("full", "TEST_full.json")


def test_threshold_default_is_per_verb():
    args = _parser().parse_args([])
    assert args.threshold == 0.15


def test_run_compare_not_requested():
    args = _parser().parse_args([])
    assert cli_util.run_compare(args, load=None, compare=None) is None


def _fake_compare(ok):
    comparison = Comparison("a", "b", threshold=0.1, kind="test")
    if not ok:
        from repro.bench.regression import Finding
        comparison.findings.append(Finding(
            figure="f", variant="v", metric="m",
            baseline=1.0, candidate=2.0, change=1.0, regression=True,
        ))
    return lambda base, cand, threshold: comparison


def test_run_compare_exit_codes(capsys):
    loader = lambda path: {"path": path}
    args = _parser().parse_args(["--compare", "a.json", "b.json"])
    assert cli_util.run_compare(args, loader, _fake_compare(ok=True)) == 0
    assert "test compare" in capsys.readouterr().out
    assert cli_util.run_compare(args, loader, _fake_compare(ok=False)) == 1
    args = _parser().parse_args(["--compare", "a.json", "b.json", "--warn-only"])
    assert cli_util.run_compare(args, loader, _fake_compare(ok=False)) == 0
