"""Scheduled defragmentation."""

import pytest

from repro.constants import GIB, KIB, MIB
from repro.core import FragPicker
from repro.core.report import DefragReport
from repro.device import make_device
from repro.errors import InvalidArgument
from repro.fs import make_filesystem
from repro.sim import run_concurrently
from repro.tools.scheduler import ScheduledDefrag
from repro.workloads.synthetic import make_paper_synthetic_file


def test_validation():
    with pytest.raises(InvalidArgument):
        ScheduledDefrag(lambda r: None, period=0, cycles=1)
    with pytest.raises(InvalidArgument):
        ScheduledDefrag(lambda r: None, period=1, cycles=0)


def test_scheduled_cycles_fire_on_period():
    fs = make_filesystem("ext4", make_device("optane", capacity=1 * GIB))
    now = make_paper_synthetic_file(fs, "/data", 1 * MIB)
    picker = FragPicker(fs)

    def make_cycle(report: DefragReport):
        return picker.actor(picker.bypass_plans(["/data"]), report_out=report)

    scheduled = ScheduledDefrag(make_cycle, period=100.0, cycles=3)
    contexts = run_concurrently({"defrag": scheduled.actor()}, start=now)
    assert len(scheduled.outcome.cycles) == 3
    # first cycle does the work; later ones find nothing fragmented
    assert scheduled.outcome.cycles[0].write_bytes > 0
    assert scheduled.outcome.cycles[2].write_bytes == 0
    # each cycle starts at (roughly) its scheduled time
    assert scheduled.outcome.cycles[1].started_at >= now + 200.0


def test_outcome_totals():
    fs = make_filesystem("ext4", make_device("optane", capacity=1 * GIB))
    now = make_paper_synthetic_file(fs, "/data", 1 * MIB)
    picker = FragPicker(fs)

    def make_cycle(report: DefragReport):
        return picker.actor(picker.bypass_plans(["/data"]), report_out=report)

    scheduled = ScheduledDefrag(make_cycle, period=10.0, cycles=2)
    scheduled.run_synchronously(fs, now=now)
    outcome = scheduled.outcome
    assert outcome.total_write_bytes == sum(c.write_bytes for c in outcome.cycles)
    assert outcome.total_elapsed >= 0
