"""Whole fleet runs: the scheduler's SLO contract and crash resilience."""

import pytest

from repro.fleet import FleetConfig, compare, load, run_fleet, save
from repro.fleet.report import SCHEMA


@pytest.fixture(scope="module")
def smoke_report():
    return run_fleet(FleetConfig.smoke(volumes=6, seed=0))


def test_fragmentation_trigger_admits_jobs(smoke_report):
    # volume 0 is always heavy, so the trigger must fire
    assert smoke_report.volumes_above_start >= 1
    assert smoke_report.jobs_admitted >= 1
    assert smoke_report.migrated_payload_bytes > 0


def test_budget_never_exceeded_per_tick(smoke_report):
    budget = smoke_report.config["budget_per_tick"]
    for row in smoke_report.ticks:
        assert row.migrated_bytes <= budget
    assert smoke_report.budget_ok


def test_slo_report_has_latency_percentiles(smoke_report):
    assert smoke_report.fg_read_count > 0
    assert 0.0 < smoke_report.fg_read_p50_s <= smoke_report.fg_read_p99_s
    assert smoke_report.fg_read_p99_s <= smoke_report.fg_read_max_s
    assert len(smoke_report.ticks) == smoke_report.config["ticks"]


def test_defrag_lowers_the_above_trigger_curve(smoke_report):
    # the whole point of the service: volumes above the trigger shrink
    assert smoke_report.volumes_above_end < smoke_report.volumes_above_start


def test_document_round_trip(tmp_path, smoke_report):
    path = str(tmp_path / "FLEET_test.json")
    document = smoke_report.to_dict()
    assert document["schema"] == SCHEMA
    save(path, document)
    loaded = load(path)
    assert loaded == document


def test_load_rejects_foreign_schema(tmp_path):
    path = str(tmp_path / "bad.json")
    save(path, {"schema": "repro.bench/v1"})
    with pytest.raises(ValueError):
        load(path)


def test_compare_identical_documents_ok(smoke_report):
    document = smoke_report.to_dict()
    comparison = compare(document, document)
    assert comparison.ok
    assert comparison.findings  # metrics were actually compared


def test_compare_flags_latency_regression(smoke_report):
    baseline = smoke_report.to_dict()
    worse = smoke_report.to_dict()
    worse["foreground"]["read_p99_s"] = baseline["foreground"]["read_p99_s"] * 2
    comparison = compare(baseline, worse)
    assert not comparison.ok
    assert any(f.metric == "fg_read_p99_s" for f in comparison.regressions)


def test_text_report_renders(smoke_report):
    text = smoke_report.text()
    assert "fleet SLO report" in text
    assert "p99" in text
    assert smoke_report.fingerprint in text


def test_crash_mid_migration_recovers_without_stalling_the_fleet():
    # this seeded storm fires one power-off inside a defrag job's
    # fallocate: the job dies, the journal replays, and the rest of the
    # fleet keeps being scheduled
    report = run_fleet(FleetConfig.smoke(volumes=8, seed=0, faults=True, ticks=8))
    assert report.jobs_failed >= 1
    assert report.recovered_entries >= 1
    assert report.journal_pending == 0  # nothing left un-replayed
    assert report.jobs_completed >= 1  # the fleet did not stall
    assert report.budget_ok


def test_faulted_volume_reenters_cooldown_then_retriggers():
    # after the crash the volume is still fragmented; once cooldown ends
    # the trigger may fire again (no permanent blacklisting)
    config = FleetConfig.smoke(
        volumes=8, seed=0, faults=True, ticks=12, cooldown_ticks=1,
    )
    report = run_fleet(config)
    assert report.jobs_failed >= 1
    assert report.jobs_admitted > report.jobs_failed
