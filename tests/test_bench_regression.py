"""BENCH document persistence and the component-level regression gate."""

import json

import pytest

from repro import cli
from repro.bench import regression

CONFIG = {"smoke": True, "synthetic": {"devices": ["optane"]}, "seed": 42}


def _document(label="base", throughput=100.0, device_service=0.2, fanout_mean=4.0):
    figures = {
        "synthetic_ext4_optane": {
            "original:seq_read": {
                "throughput_mbps": throughput,
                "split_fanout": {"count": 64, "mean": fanout_mean,
                                 "p95": fanout_mean * 2, "max": 33.0},
                "attribution": {
                    "schema": "repro.obs.attribution/v1",
                    "total_s": device_service + 0.05,
                    "syscalls": 64,
                    "components_s": {
                        "fs_cpu": 0.01, "kernel_queue": 0.0, "kernel_cpu": 0.02,
                        "split_cost": 0.02, "device_queue": 0.0,
                        "device_service": device_service, "device_penalty": 0.0,
                    },
                    "residual_s": 0.0,
                    "ok": True,
                },
            },
        },
    }
    return regression.build_document(label, CONFIG, figures)


def test_roundtrip_and_schema_gate(tmp_path):
    path = tmp_path / "BENCH_base.json"
    document = _document()
    regression.save(str(path), document)
    loaded = regression.load(str(path))
    assert loaded == document
    assert loaded["schema"] == regression.SCHEMA

    bad = dict(document, schema="repro.bench/v999")
    bad_path = tmp_path / "BENCH_bad_schema.json"
    bad_path.write_text(json.dumps(bad))
    with pytest.raises(ValueError, match="unsupported bench schema"):
        regression.load(str(bad_path))


def test_fingerprint_is_stable_and_config_sensitive():
    a = regression.config_fingerprint({"seed": 42, "devices": ["optane", "hdd"]})
    b = regression.config_fingerprint({"devices": ["optane", "hdd"], "seed": 42})
    assert a == b  # key order is canonicalised
    c = regression.config_fingerprint({"seed": 43, "devices": ["optane", "hdd"]})
    assert a != c
    assert len(a) == 16


def test_identical_documents_compare_clean():
    comparison = regression.compare(_document(), _document(label="again"))
    assert comparison.ok
    assert comparison.findings  # values were actually compared
    assert not comparison.warnings


def test_direction_aware_regressions():
    base = _document()
    # throughput DOWN 15% -> regression
    slower = _document(label="cand", throughput=85.0)
    comparison = regression.compare(base, slower, threshold=0.10)
    assert [f.metric for f in comparison.regressions] == ["throughput_mbps"]
    # throughput UP 15% -> improvement, not a regression
    faster = _document(label="cand", throughput=115.0)
    assert regression.compare(base, faster, threshold=0.10).ok
    # component seconds UP 20% -> regression
    costlier = _document(label="cand", device_service=0.24)
    comparison = regression.compare(base, costlier, threshold=0.10)
    assert [f.metric for f in comparison.regressions] == [
        "attribution.device_service"
    ]
    # component seconds DOWN -> fine
    cheaper = _document(label="cand", device_service=0.16)
    assert regression.compare(base, cheaper, threshold=0.10).ok
    # fan-out mean UP -> regression (fragmentation crept back in)
    refragmented = _document(label="cand", fanout_mean=5.0)
    comparison = regression.compare(base, refragmented, threshold=0.10)
    assert [f.metric for f in comparison.regressions] == ["split_fanout.mean"]


def test_small_drift_below_threshold_passes():
    base = _document()
    wobble = _document(label="cand", throughput=95.5, device_service=0.209)
    assert regression.compare(base, wobble, threshold=0.10).ok


def test_mismatched_fingerprints_warn():
    base = _document()
    other = regression.build_document(
        "cand", {"seed": 7}, base["figures"]
    )
    comparison = regression.compare(base, other)
    assert any("fingerprint" in w for w in comparison.warnings)


def test_missing_figure_and_variant_warn():
    base = _document()
    empty = regression.build_document("cand", CONFIG, {})
    comparison = regression.compare(base, empty)
    assert comparison.ok  # nothing comparable, nothing regressed
    assert any("missing" in w for w in comparison.warnings)


def test_cli_compare_exit_codes(tmp_path, capsys):
    base_path = tmp_path / "BENCH_base.json"
    cand_path = tmp_path / "BENCH_cand.json"
    regression.save(str(base_path), _document())

    # injected 15% throughput regression -> exit 1
    regression.save(str(cand_path), _document(label="cand", throughput=85.0))
    code = cli.main(["bench", "--compare", str(base_path), str(cand_path)])
    assert code == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "throughput_mbps" in out

    # --warn-only downgrades it to exit 0
    code = cli.main(["bench", "--compare", str(base_path), str(cand_path),
                     "--warn-only"])
    assert code == 0

    # 5% drift under a 10% threshold -> exit 0
    regression.save(str(cand_path), _document(label="cand", throughput=95.0))
    code = cli.main(["bench", "--compare", str(base_path), str(cand_path)])
    assert code == 0

    # a tighter threshold flags the same drift
    code = cli.main(["bench", "--compare", str(base_path), str(cand_path),
                     "--threshold", "0.03"])
    assert code == 1


def test_cli_bench_smoke_writes_schema_versioned_document(tmp_path, capsys):
    bench_path = tmp_path / "BENCH_ci.json"
    trace_path = tmp_path / "trace.json"
    code = cli.main(["bench", "--smoke", "--label", "ci",
                     "--json", str(bench_path), "--trace", str(trace_path)])
    assert code == 0
    document = regression.load(str(bench_path))
    assert document["schema"] == regression.SCHEMA
    assert document["label"] == "ci"
    assert document["fingerprint"] == regression.config_fingerprint(
        document["config"]
    )
    # every captured variant's attribution satisfies the invariant
    checked = 0
    for figure in document["figures"].values():
        for summary in figure.values():
            attribution = summary.get("attribution")
            if attribution is None:
                continue
            assert attribution["ok"] is True
            attributed = sum(attribution["components_s"].values())
            assert attributed == pytest.approx(attribution["total_s"], rel=0.01)
            checked += 1
    assert checked >= 4
    # the Chrome trace rides along, with the fragmentation timeline
    trace = json.loads(trace_path.read_text())
    assert trace["fragTimeline"]["schema"] == "repro.obs.fragtimeline/v1"
    assert any(e.get("ph") == "C" for e in trace["traceEvents"])
    out = capsys.readouterr().out
    assert "(total measured)" in out
