"""End-to-end SLO determinism: fleet gating, storms, byte-stable docs."""

import dataclasses
import json

import pytest

from repro.fleet import FleetConfig, FleetSlo, run_fleet
from repro.fleet.slo import DEFAULT_LATENCY_SLO_S, fleet_specs, volume_spec
from repro.obs import hooks
from repro.obs.hooks import Instrumentation
from repro.obs.slo import compare, validate


@pytest.fixture(autouse=True)
def _restore_global_instrumentation():
    yield
    hooks.disable()


def _config(**overrides):
    return dataclasses.replace(FleetConfig.smoke(), **overrides)


def _slo_run(config, armed=False):
    monitor = FleetSlo.for_config(config)
    if armed:
        with hooks.use(Instrumentation()):
            report = run_fleet(config, slo=monitor)
    else:
        report = run_fleet(config, slo=monitor)
    return monitor, report


def _doc(monitor, config):
    return monitor.document("test", {"kind": "fleet", "config": config.to_dict()})


# -- document byte-reproducibility -------------------------------------


def test_same_seed_same_document_bytes():
    config = _config()
    a = json.dumps(_doc(_slo_run(config)[0], config), sort_keys=True)
    b = json.dumps(_doc(_slo_run(config)[0], config), sort_keys=True)
    assert a == b


def test_armed_instrumentation_does_not_change_the_document():
    config = _config(faults=True)
    plain = json.dumps(_doc(_slo_run(config)[0], config), sort_keys=True)
    armed = json.dumps(
        _doc(_slo_run(config, armed=True)[0], config), sort_keys=True
    )
    assert plain == armed


def test_fault_storm_document_is_reproducible_and_valid():
    config = _config(faults=True)
    docs = [_doc(_slo_run(config)[0], config) for _ in range(2)]
    assert docs[0] == docs[1]
    validate(docs[0])


# -- gating vs plain fleet ----------------------------------------------


def test_plain_fleet_fingerprint_unchanged_by_slo_machinery_existing():
    config = _config()
    assert run_fleet(config).fingerprint == run_fleet(config).fingerprint
    # and a plain report has no slo section at all
    report = run_fleet(config)
    assert report.slo is None
    assert "slo" not in report.to_dict()


def test_gated_and_ungated_fingerprints_differ():
    config = _config()
    plain = run_fleet(config)
    monitor, gated = _slo_run(config)
    # gating reorders admissions, and the config stamp marks the run
    assert "slo" in gated.to_dict()["config"]
    assert plain.fingerprint != gated.fingerprint


def test_gated_report_carries_alerts_and_promotions():
    config = _config(faults=True)
    monitor, report = _slo_run(config)
    section = report.to_dict()["slo"]
    assert section["latency_slo_s"] == DEFAULT_LATENCY_SLO_S
    assert set(section["slos"]) == {s.name for s in fleet_specs(config)}
    assert len(section["alerts"]) >= 1  # the storm must fire
    assert section["volume_alerts"] >= 1
    for promo in section["promotions"]:
        assert set(promo) == {"tick", "volume"}
    assert "SLO gating" in report.text()


def test_storm_regresses_against_clean_run_direction_aware():
    clean_cfg = _config()
    storm_cfg = _config(faults=True)
    clean = _doc(_slo_run(clean_cfg)[0], clean_cfg)
    storm = _doc(_slo_run(storm_cfg)[0], storm_cfg)
    comparison = compare(clean, storm)
    regressions = [f for f in comparison.findings if f.regression]
    assert regressions, "fault storm must regress at least one SLO metric"
    # every compared metric moves in its declared direction
    for finding in regressions:
        if finding.metric in ("compliance", "budget_remaining"):
            assert finding.candidate < finding.baseline
        else:
            assert finding.candidate > finding.baseline


# -- monitor wiring -----------------------------------------------------


def test_volume_alert_promotes_queued_volume():
    config = _config(faults=True)
    monitor, report = _slo_run(config)
    promoted = {p["volume"] for p in monitor.promotions}
    volume_slos = {
        name for name in (a["slo"] for a in monitor.plane.alerts)
        if name.startswith("vol.")
    }
    # every promotion traces back to a per-volume burn alert
    for volume in promoted:
        assert any(volume in name for name in volume_slos)


def test_for_config_builds_one_spec_per_volume():
    config = _config()
    monitor = FleetSlo.for_config(config)
    names = [s.name for s in monitor.plane.specs]
    fleet_names = [s.name for s in fleet_specs(config)]
    assert names[:len(fleet_names)] == fleet_names
    assert sum(1 for n in names if n.startswith("vol.")) == config.volumes


def test_volume_spec_shape():
    spec = volume_spec("vol0001", 0.002)
    assert spec.metric == "vol.vol0001.read_latency_s"
    assert spec.objective == "le"
    assert spec.threshold == 0.002


def test_custom_latency_objective_changes_judgment():
    config = _config()
    strict = FleetSlo.for_config(config, latency_slo_s=1e-6)
    run_fleet(config, slo=strict)
    lax = FleetSlo.for_config(config, latency_slo_s=10.0)
    run_fleet(config, slo=lax)
    def latency_bad(monitor):
        return sum(
            summary["bad_samples"]
            for name, summary in monitor.plane.summaries().items()
            if "latency" in name
        )

    assert latency_bad(strict) > latency_bad(lax) == 0


# -- bench / perf post-hoc evaluation -----------------------------------


def test_bench_post_hoc_slos_are_deterministic():
    from repro.bench.suite import evaluate_slos, run_suite

    summaries = []
    for _ in range(2):
        _, trace_result = run_suite(smoke=True)
        plane = evaluate_slos(trace_result)
        summaries.append(json.dumps(plane.summaries(), sort_keys=True))
        hooks.disable()
    assert summaries[0] == summaries[1]
    parsed = json.loads(summaries[0])
    # the defrag phase must show as partial (not total) compliance
    assert 0.0 < parsed["frag_level"]["compliance"] < 1.0


def test_perf_post_hoc_slos_judge_layer_walls():
    from repro.perf.suite import evaluate_slos

    document = {"layers": {
        "fast_a": {"wall_s": 0.01}, "fast_b": {"wall_s": 0.02},
        "slow": {"wall_s": 10.0},
    }}
    plane = evaluate_slos(document)
    summary = plane.summaries()["layer_wall"]
    assert summary["samples"] == 3
    assert summary["bad_samples"] == 1  # only the outlier blows 2x mean
    with pytest.raises(ValueError):
        evaluate_slos({"layers": {}})
