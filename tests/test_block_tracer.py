"""blktrace-equivalent accounting."""

from repro.block import BlockTracer, IoCommand, IoOp, TrafficCounter


def test_per_tag_accounting():
    tracer = BlockTracer()
    tracer.observe([
        IoCommand(IoOp.READ, 0, 100, "a"),
        IoCommand(IoOp.WRITE, 0, 200, "a"),
        IoCommand(IoOp.READ, 0, 300, "b"),
        IoCommand(IoOp.DISCARD, 0, 400, "b"),
    ])
    assert tracer.tag("a").read_bytes == 100
    assert tracer.tag("a").write_bytes == 200
    assert tracer.tag("b").read_bytes == 300
    assert tracer.tag("b").discard_bytes == 400
    assert tracer.total.read_bytes == 400
    assert tracer.tag("missing").total_bytes == 0


def test_command_counts():
    tracer = BlockTracer()
    tracer.observe([IoCommand(IoOp.READ, 0, 1, "x")] * 5)
    assert tracer.tag("x").read_commands == 5


def test_snapshot_delta():
    counter = TrafficCounter()
    counter.account(IoCommand(IoOp.WRITE, 0, 100))
    snap = counter.snapshot()
    counter.account(IoCommand(IoOp.WRITE, 0, 50))
    delta = counter.delta(snap)
    assert delta.write_bytes == 50
    assert snap.write_bytes == 100  # snapshot unaffected


def test_keep_log():
    tracer = BlockTracer(keep_log=True)
    tracer.observe([IoCommand(IoOp.READ, 0, 1)])
    assert len(tracer.log) == 1


def test_observe_emits_into_obs_event_ring():
    """With obs enabled, the tracer mirrors commands into the shared ring."""
    from repro.obs import hooks
    from repro.obs.hooks import Instrumentation

    try:
        with hooks.use(Instrumentation()) as obs:
            tracer = BlockTracer()
            tracer.observe([
                IoCommand(IoOp.READ, 4096, 512, "a"),
                IoCommand(IoOp.WRITE, 8192, 1024, "b"),
            ], now=1.5)
            events = [e for e in obs.spans.events if e.name == "block.cmd"]
        assert len(events) == 2
        read, write = events
        assert read.track == "block" and read.time == 1.5
        assert read.attrs == {"op": "read", "offset": 4096, "length": 512, "tag": "a", "pid": 0}
        assert write.attrs["op"] == "write" and write.attrs["tag"] == "b"
        # the counter side is unaffected by the mirroring
        assert tracer.tag("a").read_bytes == 512
    finally:
        hooks.disable()
