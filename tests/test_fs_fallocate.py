"""fallocate: allocation and punch-hole semantics (FragPicker's tools)."""

import pytest

from repro.constants import BLOCK_SIZE, KIB
from repro.errors import InvalidArgument
from repro.fs.base import FallocMode
from repro.fs.fiemap import fiemap


def test_allocate_backs_holes(fs):
    handle = fs.open("/f", create=True)
    fs.fallocate(handle, FallocMode.ALLOCATE, 0, 64 * KIB)
    inode = fs.inode_of("/f")
    assert inode.extent_map.is_fully_mapped(0, 64 * KIB)
    assert inode.size == 64 * KIB


def test_allocate_contiguous_when_possible(fs):
    handle = fs.open("/f", create=True)
    fs.fallocate(handle, FallocMode.ALLOCATE, 0, 256 * KIB)
    assert fs.inode_of("/f").fragment_count() == 1


def test_allocate_skips_mapped_parts(fs):
    handle = fs.open("/f", o_direct=True, create=True)
    fs.write(handle, 0, 8 * KIB)
    extents_before = fs.inode_of("/f").extent_map.extents()
    fs.fallocate(handle, FallocMode.ALLOCATE, 0, 16 * KIB)
    # original mapping untouched, hole behind it filled
    assert fs.inode_of("/f").extent_map.map_range(0, 8 * KIB) == [
        (extents_before[0].disk_offset, 8 * KIB)
    ]
    assert fs.inode_of("/f").extent_map.is_fully_mapped(0, 16 * KIB)


def test_punch_frees_blocks(fs):
    handle = fs.open("/f", o_direct=True, create=True)
    fs.write(handle, 0, 64 * KIB)
    free_before = fs.free_space.free_bytes
    fs.fallocate(handle, FallocMode.PUNCH_HOLE, 16 * KIB, 32 * KIB)
    assert fs.free_space.free_bytes == free_before + 32 * KIB
    assert fs.inode_of("/f").extent_map.holes(0, 64 * KIB) == [(16 * KIB, 32 * KIB)]
    # size unchanged by punching
    assert fs.inode_of("/f").size == 64 * KIB


def test_punch_zeroes_content(fs):
    handle = fs.open("/f", create=True)
    fs.write(handle, 0, data=b"A" * 16 * KIB)
    fs.fallocate(handle, FallocMode.PUNCH_HOLE, 4 * KIB, 8 * KIB)
    data = fs.read(handle, 0, 16 * KIB, want_data=True).data
    assert data[: 4 * KIB] == b"A" * 4 * KIB
    assert data[4 * KIB : 12 * KIB] == b"\x00" * 8 * KIB
    assert data[12 * KIB :] == b"A" * 4 * KIB


def test_punch_unaligned_zeroes_edges_keeps_blocks(fs):
    """Linux semantics: partial blocks are zeroed, not deallocated —
    the data-loss hazard FragPicker's alignment avoids."""
    handle = fs.open("/f", create=True)
    fs.write(handle, 0, data=b"B" * 16 * KIB)
    fs.fsync(handle)
    free_before = fs.free_space.free_bytes
    fs.fallocate(handle, FallocMode.PUNCH_HOLE, 2 * KIB, 4 * KIB)  # [2K, 6K)
    # only zero whole blocks between aligned bounds [4K, 4K) -> none freed
    assert fs.free_space.free_bytes == free_before
    data = fs.read(handle, 0, 8 * KIB, want_data=True).data
    assert data[2 * KIB : 6 * KIB] == b"\x00" * 4 * KIB
    assert data[: 2 * KIB] == b"B" * 2 * KIB


def test_punch_then_allocate_relocates(fs):
    """The FragPicker migration primitive: punch + allocate yields fresh,
    contiguous blocks."""
    handle = fs.open("/f", o_direct=True, create=True)
    dummy = fs.open("/dummy", o_direct=True, create=True)
    now = 0.0
    for i in range(8):  # interleave to fragment /f
        now = fs.write(handle, i * 4 * KIB, 4 * KIB, now=now).finish_time
        now = fs.write(dummy, i * 4 * KIB, 4 * KIB, now=now).finish_time
    assert fs.inode_of("/f").fragment_count() == 8
    fs.fallocate(handle, FallocMode.PUNCH_HOLE, 0, 32 * KIB, now=now)
    fs.fallocate(handle, FallocMode.ALLOCATE, 0, 32 * KIB, now=now)
    assert fs.inode_of("/f").fragment_count() == 1


def test_fallocate_rejects_bad_length(fs):
    handle = fs.open("/f", create=True)
    with pytest.raises(InvalidArgument):
        fs.fallocate(handle, FallocMode.ALLOCATE, 0, 0)
