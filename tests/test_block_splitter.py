"""Request splitting and merging — the structural core of the paper."""

import pytest
from hypothesis import given, strategies as st

from repro.block import IoOp, merge_adjacent, split_ranges
from repro.constants import BLOCK_SIZE, KIB, MAX_REQUEST_SIZE


def test_contiguous_file_one_command():
    commands = split_ranges(IoOp.READ, [(0, 128 * KIB)])
    assert len(commands) == 1
    assert commands[0].offset == 0
    assert commands[0].length == 128 * KIB


def test_fragmented_file_splits():
    ranges = [(i * 64 * KIB, 4 * KIB) for i in range(32)]
    commands = split_ranges(IoOp.READ, ranges)
    assert len(commands) == 32


def test_adjacent_ranges_merge_back():
    ranges = [(0, 4 * KIB), (4 * KIB, 4 * KIB), (8 * KIB, 4 * KIB)]
    commands = split_ranges(IoOp.READ, ranges)
    assert len(commands) == 1
    assert commands[0].length == 12 * KIB


def test_merge_is_order_sensitive():
    # non-adjacent submission order is preserved, not sorted
    ranges = [(8 * KIB, 4 * KIB), (0, 4 * KIB)]
    assert merge_adjacent(ranges) == [(8 * KIB, 4 * KIB), (0, 4 * KIB)]


def test_max_request_cap():
    commands = split_ranges(IoOp.WRITE, [(0, 2 * MAX_REQUEST_SIZE + KIB)])
    assert len(commands) == 3
    assert commands[0].length == MAX_REQUEST_SIZE
    assert commands[-1].length == KIB


def test_zero_length_ranges_dropped():
    assert merge_adjacent([(0, 0), (4 * KIB, 4 * KIB)]) == [(4 * KIB, 4 * KIB)]


def test_tag_propagates():
    commands = split_ranges(IoOp.READ, [(0, KIB)], tag="workload")
    assert commands[0].tag == "workload"


range_lists = st.lists(
    st.tuples(
        st.integers(0, 1000).map(lambda b: b * BLOCK_SIZE),
        st.integers(1, 64).map(lambda b: b * BLOCK_SIZE),
    ),
    min_size=1,
    max_size=30,
)


@given(range_lists)
def test_split_conserves_bytes(ranges):
    commands = split_ranges(IoOp.READ, ranges)
    assert sum(c.length for c in commands) == sum(length for _, length in ranges)


@given(range_lists)
def test_split_respects_cap_and_contiguity(ranges):
    commands = split_ranges(IoOp.READ, ranges)
    for command in commands:
        assert 0 < command.length <= MAX_REQUEST_SIZE
    # no two adjacent output commands could have been merged further
    for a, b in zip(commands, commands[1:]):
        if a.end == b.offset:
            assert a.length == MAX_REQUEST_SIZE


@given(range_lists)
def test_split_covers_exact_ranges(ranges):
    commands = split_ranges(IoOp.READ, ranges)
    covered = []
    for command in commands:
        covered.append((command.offset, command.length))
    # re-merging the output reproduces the merged input
    assert merge_adjacent(covered) == merge_adjacent(ranges)
