"""Key distributions."""

from collections import Counter

import pytest

from repro.errors import InvalidArgument
from repro.workloads import UniformKeys, ZipfianKeys


def test_uniform_bounds_and_coverage():
    gen = UniformKeys(100, seed=1)
    samples = [gen.next() for _ in range(5000)]
    assert all(0 <= s < 100 for s in samples)
    assert len(set(samples)) > 90


def test_zipfian_bounds():
    gen = ZipfianKeys(1000, seed=2)
    samples = [gen.next() for _ in range(5000)]
    assert all(0 <= s < 1000 for s in samples)


def test_zipfian_is_skewed():
    zipf = ZipfianKeys(1000, seed=3)
    uniform = UniformKeys(1000, seed=3)
    z_counts = Counter(zipf.next() for _ in range(10000))
    u_counts = Counter(uniform.next() for _ in range(10000))
    z_top = sum(c for _, c in z_counts.most_common(10))
    u_top = sum(c for _, c in u_counts.most_common(10))
    assert z_top > 3 * u_top


def test_zipfian_deterministic_by_seed():
    a = ZipfianKeys(100, seed=7)
    b = ZipfianKeys(100, seed=7)
    assert [a.next() for _ in range(100)] == [b.next() for _ in range(100)]
    c = ZipfianKeys(100, seed=8)
    assert [ZipfianKeys(100, seed=7).next() for _ in range(100)] != [
        c.next() for _ in range(100)
    ]


def test_scramble_spreads_hot_keys():
    clustered = ZipfianKeys(1000, seed=5, scramble=False)
    samples = [clustered.next() for _ in range(2000)]
    hot = Counter(samples).most_common(1)[0][0]
    assert hot < 10  # unscrambled: hottest key is a low rank
    scrambled = ZipfianKeys(1000, seed=5, scramble=True)
    s_samples = [scrambled.next() for _ in range(2000)]
    s_hot = Counter(s_samples).most_common(5)
    assert any(key >= 10 for key, _ in s_hot)


def test_validation():
    with pytest.raises(InvalidArgument):
        ZipfianKeys(0)
    with pytest.raises(InvalidArgument):
        ZipfianKeys(10, theta=1.5)
    with pytest.raises(InvalidArgument):
        UniformKeys(0)
