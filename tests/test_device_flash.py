"""Flash SSD: channel parallelism, conflicts, out-of-place updates."""

from repro.block import IoCommand, IoOp
from repro.constants import GIB, KIB, MIB
from repro.device.flash import FlashSsd


def read(offset, length=4 * KIB):
    return IoCommand(IoOp.READ, offset, length)


def write(offset, length=4 * KIB):
    return IoCommand(IoOp.WRITE, offset, length)


def test_contiguous_read_uses_all_channels():
    ssd = FlashSsd(capacity=1 * GIB)
    big = ssd.submit([read(0, 128 * KIB)], 0.0)
    # 32 pages over 8 channels: ~4 pages of serial flash time, not 32
    assert big.latency < 32 * ssd.params.page_read


def test_channel_conflict_hurts():
    """Pages concentrated on one channel lose the parallelism."""
    ssd = FlashSsd(capacity=1 * GIB)
    # address-striped: pages k*8 all live on channel 0
    conflicted = ssd.submit([read(i * 8 * 4 * KIB) for i in range(16)], 0.0)
    ssd2 = FlashSsd(capacity=1 * GIB)
    spread = ssd2.submit([read(i * 4 * KIB) for i in range(16)], 0.0)
    assert conflicted.latency > 1.5 * spread.latency


def test_updates_stripe_regardless_of_address():
    """Out-of-place FTL writes spread over channels even for conflicting
    LBAs — why fragmented updates hurt less than reads on flash."""
    ssd = FlashSsd(capacity=1 * GIB)
    conflicting_lbas = [write(i * 8 * 4 * KIB) for i in range(16)]
    w = ssd.submit(conflicting_lbas, 0.0)
    ssd2 = FlashSsd(capacity=1 * GIB)
    r = ssd2.submit([read(i * 8 * 4 * KIB) for i in range(16)], 0.0)
    # writes don't pay the channel conflict the reads pay (beyond the
    # program-vs-read latency ratio)
    ratio = ssd.params.page_program / ssd2.params.page_read
    assert w.latency < r.latency * ratio


def test_read_follows_write_channel():
    ssd = FlashSsd(capacity=1 * GIB)
    ssd.submit([write(0, 64 * KIB)], 0.0)
    pages = range(0, 16)
    channels = {ssd.ftl.channel_of(p) for p in pages}
    assert len(channels) == ssd.params.channels


def test_link_caps_throughput():
    ssd = FlashSsd(capacity=1 * GIB)
    result = ssd.submit([read(0, 4 * MIB)], 0.0)
    assert result.latency >= 4 * MIB / ssd.params.interface_rate


def test_discard_invalidates_mapping():
    ssd = FlashSsd(capacity=1 * GIB)
    ssd.submit([write(0, 32 * KIB)], 0.0)
    assert 0 in ssd.ftl.mapping
    ssd.submit([IoCommand(IoOp.DISCARD, 0, 32 * KIB)], 1.0)
    assert 0 not in ssd.ftl.mapping


def test_describe_reports_wear():
    ssd = FlashSsd(capacity=1 * GIB)
    ssd.submit([write(0, 128 * KIB)], 0.0)
    info = ssd.describe()
    assert info["kind"] == "flash"
    assert info["write_amplification"] >= 1.0
