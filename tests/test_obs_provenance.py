"""Causal provenance: pid minting, layer threading, forest reconstruction."""

import pytest

from repro.block.request import IoCommand, IoOp
from repro.constants import BLOCK_SIZE, MIB
from repro.device import make_device
from repro.fs import make_filesystem
from repro.obs import hooks
from repro.obs.hooks import Instrumentation
from repro.obs.provenance import (
    COMMAND_EVENT,
    SUBMIT_EVENT,
    SYSCALL_EVENT,
    ProvenanceRecorder,
    build_forest,
)
from repro.obs.spans import SpanRecorder


@pytest.fixture(autouse=True)
def _restore_global_instrumentation():
    yield
    hooks.disable()


def _armed_fs(device_kind="optane", **obs_kwargs):
    obs = Instrumentation(provenance=True, **obs_kwargs)
    hooks.install(obs)
    device = make_device(device_kind, capacity=64 * MIB)
    fs = make_filesystem("ext4", device, metadata_region=4 * MIB)
    return obs, fs


# -- recorder semantics ------------------------------------------------


def test_mint_is_sequential_and_suspendable():
    rec = ProvenanceRecorder(SpanRecorder())
    assert rec.mint() == 1
    assert rec.mint() == 2
    rec.suspend()
    assert rec.mint() == 0  # 0 = untracked
    rec.resume()
    assert rec.mint() == 3


def test_edges_land_in_the_event_ring_on_dedicated_tracks():
    spans = SpanRecorder()
    rec = ProvenanceRecorder(spans)
    pid = rec.mint()
    rec.syscall(pid, "read", app="a", path="/f", ino=1, offset=0,
                size=4096, start=0.0, end=1.0, requests=2)
    rec.submit(pid, 2, 0.0, 0.1, 0.2)
    rec.command(pid, "flash", "channel", "read", 0, 4096,
                0.2, 0.3, 0.9, units=2, penalty=0.0)
    tracks = {e.track for e in spans.events}
    assert tracks == {"prov.fs", "prov.block", "prov.device"}
    names = {e.name for e in spans.events}
    assert names == {SYSCALL_EVENT, SUBMIT_EVENT, COMMAND_EVENT}


# -- end-to-end threading through the stack ----------------------------


def test_o_direct_read_reconstructs_a_full_tree():
    obs, fs = _armed_fs()
    handle = fs.open("/f", o_direct=True, app="db", create=True)
    now = fs.write(handle, 0, 8 * BLOCK_SIZE, now=0.0).finish_time
    result = fs.read(handle, 0, 8 * BLOCK_SIZE, now=now)
    forest = build_forest(obs.spans)
    crossing = forest.layer_crossing()
    assert len(crossing) >= 2  # the write and the read both hit the device
    read_tree = next(t for t in crossing if t.op == "read")
    assert read_tree.app == "db" and read_tree.path == "/f"
    assert read_tree.complete
    assert read_tree.submits and read_tree.commands
    # timing invariants: issue <= pickup <= drain, all inside the syscall
    for cmd in read_tree.commands:
        assert cmd.issue <= cmd.begin <= cmd.end
        assert read_tree.start <= cmd.end <= read_tree.end
    assert read_tree.latency == pytest.approx(result.latency)
    assert read_tree.fanout == len(read_tree.commands)
    assert read_tree.tail is not None
    # optane model labels its parallel units as banks
    assert read_tree.tail.unit == "bank"


def test_fsync_tree_owns_writeback_and_journal_commands():
    obs, fs = _armed_fs()
    handle = fs.open("/f", app="db", create=True)
    now = fs.write(handle, 0, 4 * BLOCK_SIZE, now=0.0).finish_time
    fs.fsync(handle, now=now)
    forest = build_forest(obs.spans)
    fsync_tree = next(
        t for t in forest.complete_trees() if t.op == "fsync"
    )
    # dirty-page flush + the metadata journal commit, all one cause
    assert fsync_tree.requests >= 2
    assert len(fsync_tree.commands) == fsync_tree.requests
    assert {c.op for c in fsync_tree.commands} == {"write"}


def test_disarmed_obs_mints_nothing_and_commands_stay_pid_zero():
    obs = Instrumentation()  # enabled but provenance NOT armed
    hooks.install(obs)
    device = make_device("flash", capacity=64 * MIB)
    fs = make_filesystem("ext4", device, metadata_region=4 * MIB)
    handle = fs.open("/f", o_direct=True, app="db", create=True)
    fs.write(handle, 0, 4 * BLOCK_SIZE, now=0.0)
    assert not fs._tracing and not fs.scheduler._tracing
    assert all(e.name not in (SYSCALL_EVENT, SUBMIT_EVENT, COMMAND_EVENT)
               for e in obs.spans.events)
    block_cmds = [e for e in obs.spans.events if e.name == "block.cmd"]
    assert block_cmds and all(e.attrs["pid"] == 0 for e in block_cmds)


def test_suspended_setup_traffic_is_untracked():
    obs, fs = _armed_fs()
    handle = fs.open("/f", o_direct=True, app="setup", create=True)
    obs.provenance.suspend()
    fs.write(handle, 0, 4 * BLOCK_SIZE, now=0.0)
    obs.provenance.resume()
    now = fs.read(handle, 0, 4 * BLOCK_SIZE, now=1.0).finish_time
    assert now > 1.0
    forest = build_forest(obs.spans)
    ops = [t.op for t in forest.complete_trees()]
    assert ops == ["read"]  # the suspended write minted no pid


# -- ring-wrap tolerance -----------------------------------------------


def test_ring_wrap_counts_orphans_and_drops():
    obs, fs = _armed_fs(max_events=32)  # tiny ring: guaranteed wrap
    handle = fs.open("/f", o_direct=True, app="db", create=True)
    now = 0.0
    for i in range(64):
        now = fs.write(handle, i * BLOCK_SIZE, BLOCK_SIZE, now=now).finish_time
    assert obs.spans.dropped_events > 0
    assert obs.registry.counter("obs.events_dropped").value == \
        obs.spans.dropped_events
    forest = build_forest(obs.spans)  # must not crash on partial trees
    assert forest.events_dropped == obs.spans.dropped_events
    summary = forest.summary()
    assert summary["events_dropped"] > 0
    # every surviving complete tree is still internally consistent
    for tree in forest.complete_trees():
        for cmd in tree.commands:
            assert cmd.issue <= cmd.begin <= cmd.end


def test_retagged_preserves_pid():
    cmd = IoCommand(IoOp.READ, 0, 4096, "a", 7)
    assert cmd.retagged("b") == IoCommand(IoOp.READ, 0, 4096, "b", 7)
