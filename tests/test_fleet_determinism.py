"""The fleet determinism guard: one seed, one byte-identical document.

Mirrors the repo's other determinism guards (obs, faults): the fleet
fingerprint must be stable across runs and invariant under armed
instrumentation, so operators can diff FLEET documents across code
changes and trust any drift to be a real behavior change.
"""

import pytest

from repro.fleet import FleetConfig, run_fleet
from repro.obs import hooks as obs_hooks


@pytest.fixture(autouse=True)
def _restore_global_instrumentation():
    yield
    obs_hooks.disable()


def test_same_seed_byte_identical_document():
    config = FleetConfig.smoke(volumes=5, seed=42)
    first = run_fleet(config)
    second = run_fleet(config)
    assert first.to_json() == second.to_json()
    assert first.fingerprint == second.fingerprint


def test_different_seed_different_fingerprint():
    a = run_fleet(FleetConfig.smoke(volumes=5, seed=1))
    b = run_fleet(FleetConfig.smoke(volumes=5, seed=2))
    assert a.fingerprint != b.fingerprint


def test_fingerprint_unchanged_with_instrumentation_armed():
    config = FleetConfig.smoke(volumes=5, seed=42)
    disarmed = run_fleet(config)
    obs_hooks.enable()
    armed = run_fleet(config)
    obs_hooks.disable()
    assert armed.fingerprint == disarmed.fingerprint
    assert armed.to_json() == disarmed.to_json()


def test_faulted_fleet_is_deterministic_too():
    config = FleetConfig.smoke(volumes=6, seed=7, faults=True)
    first = run_fleet(config)
    second = run_fleet(config)
    assert first.to_json() == second.to_json()


def test_config_change_changes_fingerprint():
    base = run_fleet(FleetConfig.smoke(volumes=5, seed=3))
    tighter = run_fleet(FleetConfig.smoke(volumes=5, seed=3, max_jobs=1))
    assert base.fingerprint != tighter.fingerprint
