"""Fragmentation timelines: sampling, export, and memory bounds."""

import pytest

from repro.constants import GIB, KIB, MIB
from repro.core import FragPicker
from repro.device import make_device
from repro.fs import make_filesystem
from repro.obs import hooks
from repro.obs.export import chrome_trace
from repro.obs.hooks import Instrumentation
from repro.obs.sampler import SERIES_NAMES, FragmentationSampler
from repro.workloads.synthetic import make_paper_synthetic_file


@pytest.fixture(autouse=True)
def _restore_global_instrumentation():
    yield
    hooks.disable()


def _fragmented_fs():
    device = make_device("optane", capacity=1 * GIB)
    fs = make_filesystem("ext4", device)
    now = make_paper_synthetic_file(fs, "/target", 8 * MIB)
    return fs, now


def test_sampler_records_every_series_via_device_listener():
    fs, now = _fragmented_fs()
    sampler = FragmentationSampler(fs, interval=0.001, paths=["/target"])
    with sampler:
        handle = fs.open("/target", o_direct=True)
        for i in range(16):
            now = fs.read(handle, i * 128 * KIB, 128 * KIB, now=now).finish_time
    assert sampler.samples_taken >= 2
    for name in SERIES_NAMES:
        assert len(sampler.series[name]) == sampler.samples_taken
    # a shredded file: many extents, contiguity far from 1
    assert sampler.series["frag.extents_per_file"].last > 1.0
    assert 0.0 < sampler.series["frag.contiguity"].last < 1.0
    # detached: further traffic must not sample
    taken = sampler.samples_taken
    fs.read(handle, 0, 128 * KIB, now=now)
    assert sampler.samples_taken == taken


def test_contiguity_rises_across_defragmentation():
    fs, now = _fragmented_fs()
    sampler = FragmentationSampler(fs, interval=0.0005, paths=["/target"])
    sampler.sample(now)
    before = sampler.series["frag.contiguity"].last
    with sampler:
        picker = FragPicker(fs)
        now = picker.defragment_bypass(["/target"], now=now).finished_at
    sampler.sample(now)
    after = sampler.series["frag.contiguity"].last
    # bypass migration makes every 128 KiB request-sized piece contiguous:
    # ~1056 extents collapse to ~64, so the contiguity curve rises sharply
    # (it only reaches 1.0 when whole files end up as single extents)
    assert before < 0.01
    assert after > 10 * before
    first = sampler.series["frag.extents_per_file"].values[0]
    last = sampler.series["frag.extents_per_file"].last
    assert last < first / 10
    # timeline is monotone in time
    times = sampler.series["frag.contiguity"].times
    assert times == sorted(times)


def test_sampler_feeds_chrome_trace_counters_and_fragtimeline():
    with hooks.use(Instrumentation()) as obs:
        fs, now = _fragmented_fs()
        sampler = FragmentationSampler(fs, interval=0.001, paths=["/target"])
        sampler.sample(now)
        picker = FragPicker(fs)
        with sampler:
            picker.defragment_bypass(["/target"], now=now)
        document = chrome_trace(obs.spans, obs.registry, sampler=sampler)
    counters = [e for e in document["traceEvents"] if e.get("ph") == "C"]
    assert {e["name"] for e in counters} == set(SERIES_NAMES)
    timeline = document["fragTimeline"]
    assert timeline["schema"] == "repro.obs.fragtimeline/v1"
    assert timeline["samples"] == sampler.samples_taken
    assert len(timeline["series"]["frag.contiguity"]) == sampler.samples_taken
    # mirrored gauges land in the registry when obs is on, tracking the
    # latest sampled reading
    gauge = obs.registry.to_dict()["frag.contiguity"]["value"]
    assert gauge == pytest.approx(sampler.series["frag.contiguity"].last)


def test_sampler_bounds_memory_by_decimating():
    fs, now = _fragmented_fs()
    sampler = FragmentationSampler(fs, interval=0.001, paths=["/target"], max_samples=8)
    original_interval = sampler.interval
    for i in range(40):
        sampler.sample(now + i * 0.01)
    assert len(sampler.series["frag.contiguity"]) <= 2 * sampler.max_samples
    assert sampler.interval > original_interval
    assert sampler.samples_taken == 40


def test_sampler_rejects_nonpositive_interval():
    fs, _ = _fragmented_fs()
    with pytest.raises(ValueError):
        FragmentationSampler(fs, interval=0.0)


def test_attach_is_reentrant_refcounted():
    fs, _ = _fragmented_fs()
    sampler = FragmentationSampler(fs, interval=0.001, paths=["/target"])
    # double attach registers the device listener exactly once
    sampler.attach()
    sampler.attach()
    assert fs.device._listeners.count(sampler._on_batch) == 1
    assert sampler.attached
    # the first detach keeps the outer attachment sampling
    sampler.detach()
    assert sampler.attached
    assert fs.device._listeners.count(sampler._on_batch) == 1
    # only the last detach removes the listener
    sampler.detach()
    assert not sampler.attached
    assert sampler._on_batch not in fs.device._listeners


def test_nested_attach_keeps_sampling_until_last_detach():
    fs, now = _fragmented_fs()
    sampler = FragmentationSampler(fs, interval=0.001, paths=["/target"])
    handle = fs.open("/target", o_direct=True)
    with sampler:            # fleet-wide attachment
        sampler.attach()     # a job's nested attachment
        sampler.detach()     # the job finishes...
        for i in range(8):
            now = fs.read(handle, i * 128 * KIB, 128 * KIB, now=now).finish_time
    # ...but the outer attachment kept observing the traffic
    assert sampler.samples_taken >= 1
    taken = sampler.samples_taken
    fs.read(handle, 0, 128 * KIB, now=now)
    assert sampler.samples_taken == taken


def test_detach_without_attach_is_a_noop():
    fs, _ = _fragmented_fs()
    sampler = FragmentationSampler(fs, interval=0.001, paths=["/target"])
    sampler.detach()        # never attached: nothing to do, no error
    sampler.detach()
    assert not sampler.attached
    # and the sampler still works normally afterwards
    with sampler:
        assert sampler.attached
    assert not sampler.attached


def test_context_manager_detaches_when_body_raises():
    fs, _ = _fragmented_fs()
    sampler = FragmentationSampler(fs, interval=0.001, paths=["/target"])
    with pytest.raises(RuntimeError, match="boom"):
        with sampler:
            assert sampler.attached
            raise RuntimeError("boom")
    # __exit__ ran: refcount back to zero, listener gone
    assert not sampler.attached
    assert sampler._attach_depth == 0
    assert sampler._on_batch not in fs.device._listeners


def test_exception_unwinds_only_its_own_nesting_level():
    fs, now = _fragmented_fs()
    sampler = FragmentationSampler(fs, interval=0.001, paths=["/target"])
    sampler.attach()  # the fleet-wide attachment
    with pytest.raises(ValueError):
        with sampler:  # a job's nested attachment dies mid-flight
            raise ValueError("job crashed")
    # the outer attachment survives the inner crash and keeps sampling
    assert sampler.attached
    assert fs.device._listeners.count(sampler._on_batch) == 1
    handle = fs.open("/target", o_direct=True)
    fs.read(handle, 0, 128 * KIB, now=now)
    assert sampler.samples_taken >= 1
    sampler.detach()
    assert not sampler.attached


def test_fleet_controller_nests_job_attach_over_fleet_attach():
    from repro.fleet import FleetConfig, build_volumes, FleetController

    config = FleetConfig.smoke(volumes=4)
    volumes = build_volumes(config)
    try:
        for volume in volumes:
            volume.sampler.attach()  # the fleet-wide attachment
        controller = FleetController(config, volumes)
        controller.begin()
        for tick in range(config.ticks):
            controller.run_tick(tick)
            # a running job stacks its own attachment on the fleet's
            for name in controller.admission.running:
                assert controller.by_name[name].sampler._attach_depth == 2
        controller.finish()
        # retired jobs balanced their nested attach; the fleet's remains
        for volume in volumes:
            if volume.spec.name not in controller.admission.running:
                assert volume.sampler._attach_depth == 1
    finally:
        for volume in volumes:
            volume.close()
