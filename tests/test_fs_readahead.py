"""Readahead: sequential detection and windowing."""

from repro.constants import KIB
from repro.fs import ReadaheadState


def test_first_read_at_zero_is_sequential():
    ra = ReadaheadState()
    plan = ra.plan(0, 32 * KIB, file_size=10_000 * KIB)
    assert plan.sequential
    assert plan.fetch_start == 0
    assert plan.fetch_end == 128 * KIB


def test_reads_inside_window_fetch_nothing_new():
    ra = ReadaheadState()
    ra.plan(0, 32 * KIB, file_size=10_000 * KIB)
    plan = ra.plan(32 * KIB, 32 * KIB, file_size=10_000 * KIB)
    assert plan.sequential
    # fetch range stays within the already-fetched window
    assert plan.fetch_end <= 128 * KIB


def test_window_extends_when_crossed():
    ra = ReadaheadState()
    ra.plan(0, 32 * KIB, file_size=10_000 * KIB)
    for offset in (32, 64, 96):
        ra.plan(offset * KIB, 32 * KIB, file_size=10_000 * KIB)
    plan = ra.plan(128 * KIB, 32 * KIB, file_size=10_000 * KIB)
    assert plan.fetch_end == 256 * KIB


def test_random_read_fetches_exact():
    ra = ReadaheadState()
    ra.plan(0, 32 * KIB, file_size=10_000 * KIB)
    plan = ra.plan(999 * 4 * KIB, 8 * KIB, file_size=10_000 * KIB)
    assert not plan.sequential
    assert plan.length == 8 * KIB


def test_clamped_to_file_size():
    ra = ReadaheadState()
    plan = ra.plan(0, 32 * KIB, file_size=48 * KIB)
    assert plan.fetch_end == 48 * KIB


def test_unaligned_request_block_aligned():
    ra = ReadaheadState()
    plan = ra.plan(1000, 1000, file_size=10_000 * KIB)
    assert plan.fetch_start == 0
    assert plan.fetch_end % (4 * KIB) == 0
