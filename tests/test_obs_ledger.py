"""The persistent run ledger: manifests, fingerprints, and `repro runs`.

A manifest's fingerprint must hash only what a deterministic re-run
reproduces (never wall time or host shape), the ledger must append in
sequence order, and the CLI verb must render list/show/trajectory views
over it.
"""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.obs import ledger

FLEET_DOC = {
    "schema": "repro.fleet/v1",
    "fingerprint": "abcd1234abcd1234",
    "jobs": {"completed": 5},
    "migration": {"payload_bytes": 1024, "budget_ok": True},
    "foreground": {"read_p99_s": 0.002},
}

PERF_DOC = {
    "schema": "repro.perf/v1",
    "fingerprint": "ffff0000ffff0000",
    "total_wall_s": 1.5,
    "layers": {"end_to_end": {"wall_s": 0.9}},
}

FAULTS_DOC = {
    "ok": True,
    "sweeps": [{"device": "optane"}],
    "campaign": {"fingerprint": "beadfeedbeadfeed", "faults_injected": 6,
                 "data_intact": True},
    "series": {"trials": 3},
}


def test_manifest_fingerprint_excludes_wall_time_and_host_shape():
    fast = ledger.build_manifest("fleet", FLEET_DOC, label="ci", seed=3,
                                 wall_s=0.1)
    slow = ledger.build_manifest("fleet", FLEET_DOC, label="ci", seed=3,
                                 wall_s=99.0)
    assert fast["fingerprint"] == slow["fingerprint"]
    assert fast["wall_s"] != slow["wall_s"]
    # but every deterministic field moves it
    other = ledger.build_manifest("fleet", FLEET_DOC, label="ci", seed=4)
    assert other["fingerprint"] != fast["fingerprint"]


def test_manifest_headlines_per_verb():
    fleet = ledger.build_manifest("fleet", FLEET_DOC)
    assert fleet["headline"] == {
        "jobs_completed": 5, "migrated_bytes": 1024,
        "fg_read_p99_s": 0.002, "budget_ok": True,
    }
    perf = ledger.build_manifest("perf", PERF_DOC)
    assert perf["headline"] == {"total_wall_s": 1.5, "end_to_end_wall_s": 0.9}
    faults = ledger.build_manifest("faults", FAULTS_DOC)
    assert faults["headline"]["faults_injected"] == 6
    assert faults["headline"]["trials"] == 3
    # the faults document carries its fingerprint on the campaign
    assert faults["doc_fingerprint"] == "beadfeedbeadfeed"


def test_record_and_list_roundtrip_with_sequence_numbers(tmp_path):
    directory = str(tmp_path / "ledger")
    p0 = ledger.record_run("fleet", FLEET_DOC, label="ci", seed=1,
                           directory=directory)
    p1 = ledger.record_run("perf", PERF_DOC, label="ci",
                           directory=directory)
    assert "000000_fleet_" in p0 and "000001_perf_" in p1
    runs = ledger.list_runs(directory)
    assert [run["verb"] for run in runs] == ["fleet", "perf"]
    assert runs[0]["path"] == p0
    only_perf = ledger.list_runs(directory, verb="perf")
    assert [run["verb"] for run in only_perf] == ["perf"]


def test_recorded_manifests_are_byte_reproducible(tmp_path):
    a = ledger.record_run("fleet", FLEET_DOC, label="ci", seed=1,
                          directory=str(tmp_path / "a"))
    b = ledger.record_run("fleet", FLEET_DOC, label="ci", seed=1,
                          directory=str(tmp_path / "b"))
    doc_a = json.loads(open(a).read())
    doc_b = json.loads(open(b).read())
    assert doc_a["fingerprint"] == doc_b["fingerprint"]
    # byte-identical apart from the non-deterministic wall clock fields
    for key in ("wall_s", "host_cpus"):
        doc_a.pop(key), doc_b.pop(key)
    assert doc_a == doc_b


def test_validate_manifest_error_paths(tmp_path):
    manifest = ledger.build_manifest("fleet", FLEET_DOC)
    ledger.validate_manifest(manifest)  # a fresh manifest validates

    with pytest.raises(ValueError, match="schema"):
        ledger.validate_manifest({**manifest, "schema": "nope/v9"})
    missing = dict(manifest)
    del missing["headline"]
    with pytest.raises(ValueError, match="missing"):
        ledger.validate_manifest(missing)
    with pytest.raises(ValueError, match="fingerprint mismatch"):
        ledger.validate_manifest({**manifest, "seed": 999})

    # a tampered file on disk is loud at list time
    directory = str(tmp_path / "ledger")
    path = ledger.record_run("fleet", FLEET_DOC, directory=directory)
    tampered = json.loads(open(path).read())
    tampered["label"] = "forged"
    with open(path, "w") as fh:
        json.dump(tampered, fh)
    with pytest.raises(ValueError, match="fingerprint mismatch"):
        ledger.list_runs(directory)


def test_resolve_dir_precedence(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
    assert ledger.resolve_dir() == ledger.DEFAULT_DIR
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path))
    assert ledger.resolve_dir() == str(tmp_path)
    assert ledger.resolve_dir("explicit") == "explicit"


def test_tables_render_across_verbs(tmp_path):
    directory = str(tmp_path / "ledger")
    ledger.record_run("fleet", FLEET_DOC, label="ci", seed=1,
                      directory=directory)
    ledger.record_run("perf", PERF_DOC, label="ci", directory=directory)
    runs = ledger.list_runs(directory)
    listing = ledger.runs_table(runs)
    assert "fleet" in listing and "perf" in listing
    assert "abcd1234abcd" in listing  # doc fingerprint, truncated
    trajectory = ledger.trajectory_table(runs)
    # union of headline keys across both verbs becomes the column set
    assert "jobs_completed" in trajectory
    assert "total_wall_s" in trajectory


# ----------------------------------------------------------------------
# the CLI verb
# ----------------------------------------------------------------------

def _seeded_ledger(tmp_path) -> str:
    directory = str(tmp_path / "ledger")
    ledger.record_run("fleet", FLEET_DOC, label="ci", seed=1,
                      directory=directory)
    ledger.record_run("perf", PERF_DOC, label="ci", directory=directory)
    return directory


def test_cli_runs_list_and_trajectory(tmp_path, capsys):
    directory = _seeded_ledger(tmp_path)
    assert cli.main(["runs", "--ledger-dir", directory]) == 0
    out = capsys.readouterr().out
    assert "fleet" in out and "perf" in out and "headline" in out

    assert cli.main(["runs", "trajectory", "--ledger-dir", directory]) == 0
    out = capsys.readouterr().out
    assert "jobs_completed" in out and "end_to_end_wall_s" in out

    assert cli.main(["runs", "list", "--verb", "perf",
                     "--ledger-dir", directory]) == 0
    out = capsys.readouterr().out
    assert "perf" in out and "fleet" not in out


def test_cli_runs_show_by_seq_and_fingerprint(tmp_path, capsys):
    directory = _seeded_ledger(tmp_path)
    assert cli.main(["runs", "show", "1", "--ledger-dir", directory]) == 0
    shown = capsys.readouterr().out
    assert '"verb": "perf"' in shown

    fingerprint = ledger.list_runs(directory)[0]["fingerprint"][:10]
    assert cli.main(["runs", "show", fingerprint,
                     "--ledger-dir", directory]) == 0
    assert '"verb": "fleet"' in capsys.readouterr().out

    assert cli.main(["runs", "show", "doesnotexist",
                     "--ledger-dir", directory]) == 1
    assert cli.main(["runs", "show", "--ledger-dir", directory]) == 2


def test_cli_runs_empty_ledger_is_a_clean_exit(tmp_path, capsys):
    directory = str(tmp_path / "nothing")
    assert cli.main(["runs", "--ledger-dir", directory]) == 0
    assert "empty" in capsys.readouterr().out
