"""Capture -> corpus -> replay round trip must be byte-identical.

The regression guard over the whole replay stack: if any stage — the
syscall monitor's capture boundary, the binary format, the parser, or
the reconstructor's closed-loop re-issue — becomes lossy or asymmetric,
equality here breaks.
"""

from repro.bench.experiments import replay_roundtrip
from repro.constants import KIB
from repro.device import make_device
from repro.fs import make_filesystem
from repro.replay.formats import BinaryTraceReader
from repro.trace.syscall_monitor import SyscallMonitor


def test_round_trip_byte_identical():
    result = replay_roundtrip.run()
    assert result.figures_identical, result.mismatches()
    assert result.trace_identical
    assert result.ok
    assert result.captured_records == result.recaptured_records > 0
    # the report renders without error and says OK
    assert "round trip OK" in result.report()


def test_round_trip_on_f2fs():
    """The round trip holds per personality, not just on ext4."""
    result = replay_roundtrip.run(fs_type="f2fs", device="optane")
    assert result.ok, result.mismatches()


def test_monitor_dump_binary_round_trips(tmp_path):
    """dump_binary writes exactly the captured window, replayably."""
    fs = make_filesystem("ext4", make_device("flash"))
    handle = fs.open("/f", o_direct=True, app="app", create=True)
    now = fs.write(handle, 0, 64 * KIB, now=0.0).finish_time
    with SyscallMonitor(fs) as monitor:
        now = fs.write(handle, 0, 16 * KIB, now=now).finish_time
        now = fs.read(handle, 0, 32 * KIB, now=now).finish_time
        fs.fsync(handle, now=now)  # not captured: read/write boundary only
    path = str(tmp_path / "cap.bin")
    assert monitor.dump_binary(path) == 2
    ops = list(BinaryTraceReader(path))
    assert [op.op for op in ops] == ["write", "read"]
    assert [op.size for op in ops] == [16 * KIB, 32 * KIB]
    ino = fs.inode_of("/f").ino
    assert all(op.file_id == ino for op in ops)
    assert all(op.o_direct for op in ops)
    # capture times are the syscall issue times, preserved exactly
    assert [op.time for op in ops] == [
        record.time for record in monitor.records
    ]
