"""FragPicker end to end."""

import pytest

from repro.constants import KIB, MIB
from repro.core import FragPicker, FragPickerConfig
from repro.device import make_device
from repro.constants import GIB
from repro.errors import DefragError
from repro.fs import make_filesystem
from repro.workloads.synthetic import make_paper_synthetic_file, sequential_read


def build(fs_type="ext4", device="optane", size=2 * MIB + 64 * KIB):
    fs = make_filesystem(fs_type, make_device(device, capacity=1 * GIB))
    # one unit is 32*4K + 128K = 256 KiB
    usable = (size // (256 * KIB)) * 256 * KIB
    now = make_paper_synthetic_file(fs, "/data", usable)
    return fs, now


def test_end_to_end_improves_reads(any_fs):
    fs = any_fs
    now = make_paper_synthetic_file(fs, "/data", 2 * MIB)
    now, before = sequential_read(fs, "/data", now=now)
    picker = FragPicker(fs)
    with picker.monitor(apps={"bench"}) as monitor:
        now, _ = sequential_read(fs, "/data", now=now)
    report = picker.defragment(monitor.records, paths=["/data"], now=now)
    now, after = sequential_read(fs, "/data", now=report.finished_at)
    assert after > 1.15 * before
    assert report.ranges_migrated > 0


def test_contiguous_ranges_skipped(fs):
    now = make_paper_synthetic_file(fs, "/data", 2 * MIB)
    picker = FragPicker(fs)
    with picker.monitor(apps={"bench"}) as monitor:
        now, _ = sequential_read(fs, "/data", now=now)
    report = picker.defragment(monitor.records, paths=["/data"], now=now)
    # the 128 KiB blocks of each unit are already contiguous: half the
    # readahead-aligned ranges are skipped
    assert report.ranges_skipped_contiguous == report.ranges_examined // 2
    assert report.write_bytes == report.ranges_migrated * 128 * KIB


def test_second_run_is_noop(fs):
    now = make_paper_synthetic_file(fs, "/data", 2 * MIB)
    picker = FragPicker(fs)
    with picker.monitor(apps={"bench"}) as monitor:
        now, _ = sequential_read(fs, "/data", now=now)
    first = picker.defragment(monitor.records, paths=["/data"], now=now)
    second = picker.defragment(monitor.records, paths=["/data"], now=first.finished_at)
    assert second.ranges_migrated == 0
    assert second.write_bytes == 0


def test_bypass_option(fs):
    now = make_paper_synthetic_file(fs, "/data", 2 * MIB)
    report = FragPicker(fs).defragment_bypass(["/data"], now=now)
    assert report.ranges_migrated > 0
    assert sum(report.fragments_after.values()) < sum(report.fragments_before.values())


def test_hotness_criterion_limits_writes(fs):
    now = make_paper_synthetic_file(fs, "/data", 2 * MIB)
    picker_all = FragPicker(fs, FragPickerConfig(hotness_criterion=1.0))
    with picker_all.monitor(apps={"bench"}) as monitor:
        now, _ = sequential_read(fs, "/data", now=now)
    fs2 = make_filesystem("ext4", make_device("optane", capacity=1 * GIB))
    now2 = make_paper_synthetic_file(fs2, "/data", 2 * MIB)
    picker_half = FragPicker(fs2, FragPickerConfig(hotness_criterion=0.4))
    with picker_half.monitor(apps={"bench"}) as monitor2:
        now2, _ = sequential_read(fs2, "/data", now=now2)
    full = picker_all.defragment(monitor.records, paths=["/data"], now=now)
    half = picker_half.defragment(monitor2.records, paths=["/data"], now=now2)
    assert half.write_bytes < full.write_bytes


def test_f2fs_ipu_toggled_and_restored():
    fs = make_filesystem("f2fs", make_device("flash", capacity=1 * GIB))
    now = make_paper_synthetic_file(fs, "/data", 2 * MIB)
    assert fs.ipu_enabled
    report = FragPicker(fs).defragment_bypass(["/data"], now=now)
    assert fs.ipu_enabled  # restored after migration
    assert report.ranges_migrated > 0
    # every surviving fragment is request-sized: no more request splitting
    # (FragPicker does not chase frag distance, so one fragment per
    # readahead range is the expected terminal state)
    before = sum(report.fragments_before.values())
    after = sum(report.fragments_after.values())
    assert after <= before / 10
    assert all(e.length >= 128 * KIB for e in fs.inode_of("/data").extent_map)


def test_needs_records_or_plans(fs):
    with pytest.raises(DefragError):
        FragPicker(fs).defragment()


def test_deleted_file_skipped(fs):
    now = make_paper_synthetic_file(fs, "/data", 2 * MIB)
    picker = FragPicker(fs)
    plans = picker.bypass_plans(["/data"])
    fs.unlink("/data", now=now)
    report = picker.defragment(plans=plans, now=now)
    assert report.ranges_migrated == 0


def test_actor_interleaves(fs):
    from repro.sim import run_concurrently

    now = make_paper_synthetic_file(fs, "/data", 2 * MIB)
    picker = FragPicker(fs)
    plans = picker.bypass_plans(["/data"])
    from repro.core.report import DefragReport
    report = DefragReport(tool="fragpicker")
    contexts = run_concurrently(
        {"defrag": picker.actor(plans, report_out=report)}, start=now
    )
    assert report.ranges_migrated > 0
    assert contexts["defrag"].finished_at >= now


def test_report_summary_readable(fs):
    now = make_paper_synthetic_file(fs, "/data", 2 * MIB)
    report = FragPicker(fs).defragment_bypass(["/data"], now=now)
    text = report.summary()
    assert "fragpicker" in text
    assert "MiB" in text
