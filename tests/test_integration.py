"""Cross-stack integration tests."""

import pytest

from repro.constants import GIB, KIB, MIB
from repro.core import FragPicker, FragPickerConfig
from repro.core.report import DefragReport
from repro.device import make_device
from repro.fs import make_filesystem
from repro.sim import run_concurrently
from repro.tools import make_conventional
from repro.trace import SyscallMonitor
from repro.workloads.kvstore import LsmConfig, LsmStore
from repro.workloads.synthetic import make_paper_synthetic_file, sequential_read
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload
from repro.bench.harness import corun_until_background_done


@pytest.mark.parametrize("fs_type", ["ext4", "f2fs", "btrfs"])
@pytest.mark.parametrize("device_kind", ["optane", "flash", "microsd", "hdd"])
def test_fragpicker_improves_reads_everywhere(fs_type, device_kind):
    """The headline claim across the full fs x device matrix."""
    fs = make_filesystem(fs_type, make_device(device_kind))
    now = make_paper_synthetic_file(fs, "/data", 2 * MIB)
    now, before = sequential_read(fs, "/data", now=now)
    report = FragPicker(fs).defragment_bypass(["/data"], now=now)
    now, after = sequential_read(fs, "/data", now=report.finished_at)
    assert after > before, (fs_type, device_kind)
    assert report.write_bytes <= 2 * MIB


@pytest.mark.parametrize("fs_type", ["ext4", "f2fs", "btrfs"])
def test_fragpicker_matches_conventional_cheaper(fs_type):
    fs = make_filesystem(fs_type, make_device("optane", capacity=1 * GIB))
    now = make_paper_synthetic_file(fs, "/data", 2 * MIB)
    fp_report = FragPicker(fs).defragment_bypass(["/data"], now=now)
    now, fp_perf = sequential_read(fs, "/data", now=fp_report.finished_at)

    fs2 = make_filesystem(fs_type, make_device("optane", capacity=1 * GIB))
    now2 = make_paper_synthetic_file(fs2, "/data", 2 * MIB)
    conv_report = make_conventional(fs2).defragment(["/data"], now=now2)
    now2, conv_perf = sequential_read(fs2, "/data", now=conv_report.finished_at)

    assert fp_perf > 0.95 * conv_perf
    assert fp_report.write_bytes < conv_report.write_bytes


def test_kvstore_values_survive_live_defrag():
    """Defragment the store's files while the workload runs; every value
    must still read back correctly afterwards."""
    fs = make_filesystem("ext4", make_device("optane", capacity=1 * GIB))
    store = LsmStore(fs, LsmConfig(block_size=32 * KIB, memtable_bytes=256 * KIB))
    workload = YcsbWorkload(store, YcsbConfig(record_count=500, value_size=256))
    now = workload.load(0.0)
    picker = FragPicker(fs)
    plans = picker.bypass_plans(store.files())
    report = DefragReport(tool="fragpicker")
    fg_ctx, _ = corun_until_background_done(
        workload.actor(duration=float("inf")),
        picker.actor(plans, report_out=report),
        start=now,
    )
    now = fg_ctx.now
    for i in range(0, 500, 7):
        now, value = store.get(b"user%012d" % i, now)
        assert value is not None and len(value) == 256, i


def test_analysis_targets_only_traced_app():
    """Per-application tracing: FragPicker migrates only what the traced
    application touched (the paper's targeted-defrag capability)."""
    fs = make_filesystem("ext4", make_device("optane", capacity=1 * GIB))
    now = make_paper_synthetic_file(fs, "/hot", 1 * MIB)
    now = make_paper_synthetic_file(fs, "/cold", 1 * MIB, app="other")
    picker = FragPicker(fs)
    with picker.monitor(apps={"bench"}) as monitor:
        now, _ = sequential_read(fs, "/hot", now=now, app="bench")
        now, _ = sequential_read(fs, "/cold", now=now, app="other")
    plans = picker.analyze(monitor.records)
    assert {p.path for p in plans} == {"/hot"}


def test_determinism_end_to_end():
    """Same seed, same code path: identical virtual-time results."""
    def run_once():
        fs = make_filesystem("ext4", make_device("flash", capacity=1 * GIB))
        now = make_paper_synthetic_file(fs, "/data", 1 * MIB)
        report = FragPicker(fs).defragment_bypass(["/data"], now=now)
        now, mbps = sequential_read(fs, "/data", now=report.finished_at)
        return report.write_bytes, report.elapsed, mbps

    assert run_once() == run_once()


def test_free_space_conserved_through_defrag(any_fs):
    fs = any_fs
    now = make_paper_synthetic_file(fs, "/data", 1 * MIB)
    used_before = fs.free_space.free_bytes
    report = FragPicker(fs).defragment_bypass(["/data"], now=now)
    # defragmentation relocates, it does not consume space — modulo the
    # active log segment F2FS keeps carved out (bounded by one segment)
    slack = 2 * MIB if fs.fs_type == "f2fs" else 0
    assert abs(fs.free_space.free_bytes - used_before) <= slack
    fs.free_space.check_invariants()
    fs.inode_of("/data").extent_map.check_invariants()


def test_monitoring_then_defrag_full_pipeline(any_fs):
    fs = any_fs
    now = make_paper_synthetic_file(fs, "/data", 1 * MIB)
    monitor = SyscallMonitor(fs, apps={"bench"})
    with monitor:
        now, _ = sequential_read(fs, "/data", now=now)
    picker = FragPicker(fs, FragPickerConfig(hotness_criterion=0.5))
    report = picker.defragment(monitor.records, paths=["/data"], now=now)
    assert report.ranges_examined > 0
    assert report.elapsed > 0
