"""Timeline and windowed throughput."""

from repro.stats import Timeline, windowed_throughput
from repro.stats.timeline import mean_rate


def test_empty_timeline():
    t = Timeline()
    assert t.duration == 0.0
    assert t.rate() == 0.0
    assert windowed_throughput(t, 1.0) == []


def test_rate():
    t = Timeline()
    for i in range(11):
        t.record(i * 0.1)
    assert t.duration == 1.0
    assert abs(t.rate() - 11.0) < 1e-9


def test_record_amount():
    t = Timeline()
    t.record(0.0, 5.0)
    t.record(1.0, 5.0)
    assert t.total() == 10.0


def test_windowed_throughput():
    t = Timeline()
    for i in range(10):
        t.record(i * 0.1 + 0.05)  # 10 events in [0, 1)
    samples = windowed_throughput(t, window=0.5, start=0.0, end=1.0)
    assert len(samples) == 2
    assert samples[0][1] == 10.0  # 5 events / 0.5s
    assert samples[1][1] == 10.0


def test_windowed_throughput_gap():
    t = Timeline()
    t.record(0.1)
    t.record(2.1)
    samples = windowed_throughput(t, window=1.0, start=0.0, end=3.0)
    assert samples[1][1] == 0.0  # the quiet middle window


def test_between():
    t = Timeline()
    for i in range(10):
        t.record(float(i))
    assert t.between(2.0, 5.0).total() == 3


def test_mean_rate():
    assert mean_rate([(0, 2.0), (1, 4.0)]) == 3.0
    assert mean_rate([]) == 0.0
