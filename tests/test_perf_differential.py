"""Differential property tests for the indexed hot-path structures.

The optimized :class:`ExtentMap` (bisect-maintained start index) and
:class:`FreeSpaceManager` (size-bucketed free-run index, running
free-byte counter, cached ``runs()``/``stats()``) are driven through
thousands of seeded randomized operations next to deliberately naive
reference implementations that use nothing but linear scans.  Every
observable — return values, raised error types *and messages*, and the
full post-operation state — must match exactly, and the optimized
structures' ``check_invariants()`` must hold throughout.
"""

import random

import pytest

from repro.constants import BLOCK_SIZE
from repro.errors import InvalidArgument, NoSpaceError
from repro.fs.extent_map import Extent, ExtentMap
from repro.fs.free_space import FreeSpaceManager

BLOCK = BLOCK_SIZE


# ---------------------------------------------------------------------------
# naive references (linear scans, recompute-everything)
# ---------------------------------------------------------------------------


class NaiveExtentMap:
    """Reference extent map: a sorted list, all operations O(n)."""

    def __init__(self):
        self.ext = []

    def extents(self):
        return list(self.ext)

    def fragment_count(self):
        count = 0
        prev_file_end = prev_disk_end = -1
        for e in self.ext:
            if e.file_offset != prev_file_end or e.disk_offset != prev_disk_end:
                count += 1
            prev_file_end = e.file_end
            prev_disk_end = e.disk_end
        return count

    def map_range(self, offset, length):
        if length <= 0:
            return []
        pieces = []
        pos, end = offset, offset + length
        for e in self.ext:
            if e.file_end <= pos or e.file_offset >= end:
                continue
            if e.file_offset > pos:
                pieces.append((None, e.file_offset - pos))
                pos = e.file_offset
            take_end = min(e.file_end, end)
            pieces.append((e.disk_offset + (pos - e.file_offset), take_end - pos))
            pos = take_end
        if pos < end:
            pieces.append((None, end - pos))
        return pieces

    def punch(self, offset, length):
        if length <= 0:
            return []
        end = offset + length
        removed, kept = [], []
        for e in self.ext:
            if e.file_end <= offset or e.file_offset >= end:
                kept.append(e)
                continue
            cut_start = max(e.file_offset, offset)
            cut_end = min(e.file_end, end)
            if e.file_offset < cut_start:
                kept.append(Extent(e.file_offset, e.disk_offset,
                                   cut_start - e.file_offset))
            removed.append(Extent(cut_start,
                                  e.disk_offset + (cut_start - e.file_offset),
                                  cut_end - cut_start))
            if cut_end < e.file_end:
                kept.append(Extent(cut_end,
                                   e.disk_offset + (cut_end - e.file_offset),
                                   e.file_end - cut_end))
        self.ext = sorted(kept)
        return removed

    def insert(self, extent):
        displaced = self.punch(extent.file_offset, extent.length)
        merged = []
        for e in sorted(self.ext + [extent]):
            if (merged and merged[-1].file_end == e.file_offset
                    and merged[-1].disk_end == e.disk_offset):
                last = merged.pop()
                merged.append(Extent(last.file_offset, last.disk_offset,
                                     last.length + e.length))
            else:
                merged.append(e)
        self.ext = merged
        return displaced


class NaiveFreeSpace:
    """Reference free-space manager: one flat run list, linear first-fit."""

    def __init__(self, region_start, region_end):
        self.region_start = region_start
        self.region_end = region_end
        self.runs_list = [(region_start, region_end - region_start)]

    # -- queries --

    def runs(self):
        return tuple(self.runs_list)

    def free_bytes(self):
        return sum(length for _, length in self.runs_list)

    def largest_run(self):
        return max((length for _, length in self.runs_list), default=0)

    # -- allocation --

    @staticmethod
    def _check(length):
        if length <= 0 or length % BLOCK_SIZE:
            raise InvalidArgument(f"bad allocation length {length}")

    def _first_fit(self, length, lo_addr, hi_addr):
        for start, run_len in self.runs_list:
            if lo_addr <= start < hi_addr and run_len >= length:
                return start
        return -1

    def _index_of(self, start):
        return [s for s, _ in self.runs_list].index(start)

    def _take(self, idx, length):
        start, run_len = self.runs_list[idx]
        if run_len == length:
            del self.runs_list[idx]
        else:
            self.runs_list[idx] = (start + length, run_len - length)
        return start

    def alloc_contiguous(self, length, goal=None):
        self._check(length)
        runs = self.runs_list
        count = len(runs)
        if goal is not None and count:
            pivot = 0
            while pivot < count and runs[pivot][0] < goal:
                pivot += 1
            if pivot > 0 and runs[pivot - 1][0] + runs[pivot - 1][1] > goal:
                pivot -= 1
            if pivot < count:
                pivot_start, pivot_len = runs[pivot]
                if pivot_start < goal < pivot_start + pivot_len:
                    if pivot_start + pivot_len - goal >= length:
                        self.alloc_at(goal, length)
                        return goal
                    if pivot_len >= length and count == 1:
                        return self._take(pivot, length)
                    found = self._first_fit(length, pivot_start + 1, self.region_end)
                    if found < 0:
                        found = self._first_fit(length, 0, pivot_start)
                    if found >= 0:
                        return self._take(self._index_of(found), length)
                    if pivot_len >= length:
                        return self._take(pivot, length)
                else:
                    found = self._first_fit(length, pivot_start, self.region_end)
                    if found < 0:
                        found = self._first_fit(length, 0, pivot_start)
                    if found >= 0:
                        return self._take(self._index_of(found), length)
                raise NoSpaceError(
                    f"no contiguous run of {length} bytes "
                    f"(largest {self.largest_run()})"
                )
        found = self._first_fit(length, 0, self.region_end)
        if found >= 0:
            return self._take(self._index_of(found), length)
        raise NoSpaceError(
            f"no contiguous run of {length} bytes (largest {self.largest_run()})"
        )

    def alloc(self, length, goal=None):
        self._check(length)
        if self.free_bytes() < length:
            raise NoSpaceError(
                f"only {self.free_bytes()} bytes free, need {length}"
            )
        try:
            start = self.alloc_contiguous(length, goal)
            return [(start, length)]
        except NoSpaceError:
            pass
        pieces = []
        remaining = length
        pivot = goal if goal is not None else self.region_start
        while remaining > 0:
            idx = next((i for i, (s, _) in enumerate(self.runs_list)
                        if s >= pivot), None)
            if idx is None:
                idx = 0
            take = min(self.runs_list[idx][1], remaining)
            start = self._take(idx, take)
            pieces.append((start, take))
            pivot = start + take
            remaining -= take
        pieces.sort()
        return pieces

    def alloc_at(self, start, length):
        self._check(length)
        idx = -1
        for i, (run_start, _) in enumerate(self.runs_list):
            if run_start <= start:
                idx = i
            else:
                break
        if idx < 0:
            raise NoSpaceError(f"range at {start} not free")
        run_start, run_len = self.runs_list[idx]
        if start < run_start or start + length > run_start + run_len:
            raise NoSpaceError(f"range [{start}, {start + length}) not free")
        replacement = []
        if start > run_start:
            replacement.append((run_start, start - run_start))
        if run_start + run_len > start + length:
            replacement.append((start + length,
                                run_start + run_len - (start + length)))
        self.runs_list[idx:idx + 1] = replacement

    def free(self, start, length):
        self._check(length)
        if start < self.region_start or start + length > self.region_end:
            raise InvalidArgument(f"free outside region: [{start}, {start + length})")
        for run_start, run_len in self.runs_list:
            if run_start < start + length and start < run_start + run_len:
                raise InvalidArgument(f"double free at {start}")
        merged = []
        for run in sorted(self.runs_list + [(start, length)]):
            if merged and merged[-1][0] + merged[-1][1] == run[0]:
                merged[-1] = (merged[-1][0], merged[-1][1] + run[1])
            else:
                merged.append(run)
        self.runs_list = merged


# ---------------------------------------------------------------------------
# differential drivers
# ---------------------------------------------------------------------------


def _outcome(fn, *args):
    """Run an op and normalize result vs (error type, error message)."""
    try:
        return ("ok", fn(*args))
    except (InvalidArgument, NoSpaceError) as exc:
        return ("err", type(exc).__name__, str(exc))


@pytest.mark.parametrize("seed", [1337, 20210826, 4242])
def test_extent_map_matches_naive_reference(seed):
    rng = random.Random(seed)
    fast, naive = ExtentMap(), NaiveExtentMap()
    for step in range(2500):
        roll = rng.random()
        offset = rng.randrange(0, 256) * BLOCK
        length = rng.randrange(1, 24) * BLOCK
        if roll < 0.45:
            extent = Extent(offset, rng.randrange(0, 2048) * BLOCK, length)
            assert fast.insert(extent) == naive.insert(extent)
        elif roll < 0.75:
            assert fast.punch(offset, length) == naive.punch(offset, length)
        else:
            assert fast.map_range(offset, length) == naive.map_range(offset, length)
        assert fast.extents() == naive.extents()
        if step % 16 == 0:
            assert fast.fragment_count() == naive.fragment_count()
        if step % 128 == 0:
            fast.check_invariants()
    fast.check_invariants()
    assert fast.extents() == naive.extents()


@pytest.mark.parametrize("seed", [1337, 90125, 271828])
def test_free_space_matches_naive_reference(seed):
    rng = random.Random(seed)
    region = 2048 * BLOCK
    fast = FreeSpaceManager(0, region)
    naive = NaiveFreeSpace(0, region)
    allocated = []
    for step in range(3000):
        roll = rng.random()
        if roll < 0.30:
            length = rng.randrange(1, 48) * BLOCK
            goal = (rng.randrange(0, 2048) * BLOCK
                    if rng.random() < 0.7 else None)
            a = _outcome(fast.alloc_contiguous, length, goal)
            b = _outcome(naive.alloc_contiguous, length, goal)
            assert a == b
            if a[0] == "ok":
                allocated.append((a[1], length))
        elif roll < 0.45:
            length = rng.randrange(1, 96) * BLOCK
            goal = (rng.randrange(0, 2048) * BLOCK
                    if rng.random() < 0.5 else None)
            a = _outcome(fast.alloc, length, goal)
            b = _outcome(naive.alloc, length, goal)
            assert a == b
            if a[0] == "ok":
                allocated.extend(a[1])
        elif roll < 0.55:
            start = rng.randrange(0, 2048) * BLOCK
            length = rng.randrange(1, 16) * BLOCK
            a = _outcome(fast.alloc_at, start, length)
            b = _outcome(naive.alloc_at, start, length)
            assert a == b
            if a[0] == "ok":
                allocated.append((start, length))
        elif allocated:
            start, length = allocated.pop(rng.randrange(len(allocated)))
            if length > BLOCK and rng.random() < 0.4:
                # free only a prefix; the suffix goes back on the list so
                # coalescing gets exercised from both sides
                cut = rng.randrange(1, length // BLOCK) * BLOCK
                allocated.append((start + cut, length - cut))
                length = cut
            a = _outcome(fast.free, start, length)
            b = _outcome(naive.free, start, length)
            assert a == b
        if rng.random() < 0.02 and allocated:
            # deliberate double free: both sides must reject identically
            start, length = allocated[rng.randrange(len(allocated))]
            assert _outcome(fast.free, start, length) == \
                _outcome(naive.free, start, length)
        assert fast.runs() == naive.runs()
        assert fast.free_bytes == naive.free_bytes()
        stats = fast.stats()
        assert (stats.free_bytes, stats.run_count, stats.largest_run) == (
            naive.free_bytes(), len(naive.runs_list), naive.largest_run()
        )
        if step % 64 == 0:
            fast.check_invariants()
    fast.check_invariants()


def test_free_space_rejects_bad_lengths_like_reference():
    fast = FreeSpaceManager(0, 64 * BLOCK)
    naive = NaiveFreeSpace(0, 64 * BLOCK)
    for length in (0, -BLOCK, BLOCK + 1):
        assert _outcome(fast.alloc_contiguous, length) == \
            _outcome(naive.alloc_contiguous, length)
        assert _outcome(fast.free, 0, length) == _outcome(naive.free, 0, length)


# ---------------------------------------------------------------------------
# batch plan / batch emission vectorizations (PR 9)
# ---------------------------------------------------------------------------


def _naive_optane_unit_work(first, last, banks, page_time):
    """The per-page accumulation loop the closed form replaced."""
    per_bank = {}
    for lpn in range(first, last + 1):
        bank = lpn % banks
        per_bank[bank] = per_bank.get(bank, 0.0) + page_time
    return tuple(per_bank.items())


def _naive_flash_read_unit_work(ftl, first, last, page_read):
    per_channel = {}
    for lpn in range(first, last + 1):
        channel = ftl.channel_of(lpn)
        per_channel[channel] = per_channel.get(channel, 0.0) + page_read
    return tuple(per_channel.items())


def _naive_split_ranges(op, ranges, tag, max_request_size, pid):
    """The subtract-and-test cap loop the batch emission replaced."""
    from repro.block.request import IoCommand

    commands = []

    def flush(cur_offset, cur_length):
        while cur_length > max_request_size:
            commands.append(IoCommand(op, cur_offset, max_request_size, tag, pid))
            cur_offset += max_request_size
            cur_length -= max_request_size
        commands.append(IoCommand(op, cur_offset, cur_length, tag, pid))

    cur_offset = cur_length = 0
    for offset, length in ranges:
        if length <= 0:
            continue
        if cur_length and cur_offset + cur_length == offset:
            cur_length += length
            continue
        if cur_length:
            flush(cur_offset, cur_length)
        cur_offset, cur_length = offset, length
    if cur_length:
        flush(cur_offset, cur_length)
    return commands


@pytest.mark.parametrize("seed", [1337, 99991])
def test_optane_batch_plan_matches_naive_loop(seed):
    from repro.block.request import IoCommand, IoOp
    from repro.device.optane import OptaneSsd

    rng = random.Random(seed)
    device = OptaneSsd()
    params = device.params
    for _ in range(400):
        op = IoOp.READ if rng.random() < 0.5 else IoOp.WRITE
        offset = rng.randrange(0, 4096 * BLOCK)
        length = rng.randrange(1, 64 * BLOCK)
        command = IoCommand(op, offset, length, "t", 0)
        plan = device._plan_command(command)
        first = offset // BLOCK
        last = (command.end - 1) // BLOCK
        page_time = (params.page_read if op is IoOp.READ
                     else params.page_write)
        # equality on the float values is bit-exact for these totals:
        # any last-ulp drift from the old accumulation loop must fail
        assert plan.unit_work == _naive_optane_unit_work(
            first, last, params.banks, page_time
        )
        assert plan.link_bytes == length


@pytest.mark.parametrize("seed", [1337, 3141])
def test_flash_batch_read_plan_matches_naive_loop(seed):
    from repro.block.request import IoCommand, IoOp
    from repro.device.flash import FlashSsd

    rng = random.Random(seed)
    device = FlashSsd()
    for _ in range(250):
        offset = rng.randrange(0, 2048 * BLOCK)
        length = rng.randrange(1, 48 * BLOCK)
        if rng.random() < 0.4:
            # mutate the mapping so reads exercise both mapped pages and
            # the unwritten address-striped fallback
            device._plan_command(IoCommand(IoOp.WRITE, offset, length, "w", 0))
            continue
        command = IoCommand(IoOp.READ, offset, length, "r", 0)
        plan = device._plan_command(command)
        first = offset // BLOCK
        last = (command.end - 1) // BLOCK
        assert plan.unit_work == _naive_flash_read_unit_work(
            device.ftl, first, last, device.params.page_read
        )


@pytest.mark.parametrize("seed", [1337, 60221023])
def test_split_ranges_batch_emission_matches_naive_loop(seed):
    from repro.block.request import IoOp
    from repro.block.splitter import split_ranges
    from repro.constants import MAX_REQUEST_SIZE

    rng = random.Random(seed)
    for _ in range(200):
        ranges = []
        cursor = rng.randrange(0, 64 * BLOCK)
        for _ in range(rng.randrange(0, 12)):
            if rng.random() < 0.3:
                ranges.append((cursor, 0))  # dropped, must not flush
            length = rng.choice([
                rng.randrange(1, 2 * BLOCK),
                rng.randrange(1, 4) * MAX_REQUEST_SIZE,
                rng.randrange(1, 4) * MAX_REQUEST_SIZE + rng.randrange(1, BLOCK),
            ])
            ranges.append((cursor, length))
            # adjacent ~half the time so merged runs span many caps
            cursor += length if rng.random() < 0.5 else length + BLOCK
        size = rng.choice([MAX_REQUEST_SIZE, 3 * BLOCK])
        assert split_ranges(IoOp.READ, ranges, "t", size, 7) == \
            _naive_split_ranges(IoOp.READ, ranges, "t", size, 7)


def test_runs_and_stats_cached_until_mutation():
    fsm = FreeSpaceManager(0, 128 * BLOCK)
    first_runs = fsm.runs()
    first_stats = fsm.stats()
    # cached objects are returned as-is while nothing mutates
    assert fsm.runs() is first_runs
    assert fsm.stats() is first_stats
    start = fsm.alloc_contiguous(4 * BLOCK)
    assert fsm.runs() is not first_runs
    assert fsm.stats().free_bytes == 124 * BLOCK
    cached = fsm.stats()
    assert fsm.stats() is cached
    fsm.free(start, 4 * BLOCK)
    assert fsm.stats() is not cached
    assert fsm.stats().free_bytes == 128 * BLOCK
