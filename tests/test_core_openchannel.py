"""Open-channel (PBA) fragmentation extension."""

import pytest

from repro.constants import BLOCK_SIZE, GIB, KIB
from repro.core import FragPicker
from repro.core.openchannel import (
    OpenChannelInspector,
    PbaAwareFragPicker,
    range_is_pba_conflicted,
)
from repro.core.range_list import FileRange
from repro.device import make_device
from repro.errors import InvalidArgument
from repro.fs import make_filesystem


def flash_fs():
    device = make_device("flash", capacity=1 * GIB)
    return make_filesystem("ext4", device), device


def concentrate(fs, path="/f", pages=32):
    """Write a file whose pages all land on one channel."""
    handle = fs.open(path, o_direct=True, app="setup", create=True)
    now = fs.write(handle, 0, pages * BLOCK_SIZE, now=0.0).finish_time
    dummy = fs.open("/dummy", o_direct=True, app="setup", create=True)
    doff = 0
    for i in range(pages):
        now = fs.write(handle, i * BLOCK_SIZE, BLOCK_SIZE, now=now).finish_time
        now = fs.write(dummy, doff, 7 * BLOCK_SIZE, now=now).finish_time
        doff += 7 * BLOCK_SIZE
    return now


def test_inspector_requires_flash():
    fs = make_filesystem("ext4", make_device("optane", capacity=1 * GIB))
    with pytest.raises(InvalidArgument):
        OpenChannelInspector(fs.device)


def test_balanced_file_not_conflicted():
    fs, device = flash_fs()
    handle = fs.open("/f", o_direct=True, create=True)
    fs.write(handle, 0, 128 * KIB)
    inspector = OpenChannelInspector(device)
    assert inspector.imbalance(fs, "/f", FileRange(0, 128 * KIB)) == pytest.approx(1.0)
    assert not range_is_pba_conflicted(inspector, fs, "/f", FileRange(0, 128 * KIB))


def test_concentrated_file_detected():
    fs, device = flash_fs()
    concentrate(fs)
    inspector = OpenChannelInspector(device)
    rng = FileRange(0, 32 * BLOCK_SIZE)
    assert inspector.imbalance(fs, "/f", rng) == pytest.approx(device.params.channels)
    assert range_is_pba_conflicted(inspector, fs, "/f", rng)
    histogram = inspector.channel_histogram(fs, "/f", rng)
    assert len(histogram) == 1


def test_stock_fragpicker_blind_to_pba():
    fs, _ = flash_fs()
    now = concentrate(fs)
    report = FragPicker(fs).defragment_bypass(["/f"], now=now)
    assert report.ranges_migrated == 0


def test_pba_picker_fixes_it():
    fs, device = flash_fs()
    now = concentrate(fs)
    picker = PbaAwareFragPicker(fs)
    report = picker.defragment(plans=picker.bypass_plans(["/f"]), now=now)
    assert report.ranges_migrated > 0
    inspector = OpenChannelInspector(device)
    assert inspector.imbalance(fs, "/f", FileRange(0, 32 * BLOCK_SIZE)) < 1.5


def test_pba_picker_also_fixes_lba_fragmentation():
    fs, _ = flash_fs()
    target = fs.open("/lba", o_direct=True, create=True)
    dummy = fs.open("/d", o_direct=True, create=True)
    now = 0.0
    for i in range(8):
        now = fs.write(target, i * 4 * KIB, 4 * KIB, now=now).finish_time
        now = fs.write(dummy, i * 4 * KIB, 4 * KIB, now=now).finish_time
    picker = PbaAwareFragPicker(fs)
    report = picker.defragment(plans=picker.bypass_plans(["/lba"]), now=now)
    assert fs.inode_of("/lba").fragment_count() == 1
    assert report.ranges_migrated > 0
