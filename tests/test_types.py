"""ByteRange semantics and the unified IoOp workload record."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidArgument
from repro.types import IO_OP_KINDS, ByteRange, IoOp


def test_length():
    assert ByteRange(0, 10).length == 10
    assert ByteRange(5, 5).length == 0


def test_invalid_ranges():
    with pytest.raises(InvalidArgument):
        ByteRange(-1, 5)
    with pytest.raises(InvalidArgument):
        ByteRange(10, 5)


def test_overlaps_includes_touching():
    assert ByteRange(0, 10).overlaps(ByteRange(10, 20))
    assert ByteRange(0, 10).overlaps(ByteRange(5, 15))
    assert not ByteRange(0, 10).overlaps(ByteRange(11, 20))


def test_intersects_is_strict():
    assert not ByteRange(0, 10).intersects(ByteRange(10, 20))
    assert ByteRange(0, 10).intersects(ByteRange(9, 20))


def test_union_and_intersection():
    a, b = ByteRange(0, 10), ByteRange(5, 15)
    assert a.union(b) == ByteRange(0, 15)
    assert a.intersection(b) == ByteRange(5, 10)
    with pytest.raises(InvalidArgument):
        ByteRange(0, 5).intersection(ByteRange(5, 10))


def test_contains_and_shift():
    assert ByteRange(0, 100).contains(ByteRange(10, 20))
    assert not ByteRange(0, 100).contains(ByteRange(90, 110))
    assert ByteRange(5, 10).shift(5) == ByteRange(10, 15)


ranges = st.tuples(st.integers(0, 1000), st.integers(0, 1000)).map(
    lambda t: ByteRange(min(t), max(t))
)


@given(ranges, ranges)
def test_overlap_symmetry(a, b):
    assert a.overlaps(b) == b.overlaps(a)
    assert a.intersects(b) == b.intersects(a)


@given(ranges, ranges)
def test_union_contains_both(a, b):
    u = a.union(b)
    assert u.contains(a) and u.contains(b)


@given(ranges, ranges)
def test_intersection_within_both(a, b):
    if a.intersects(b):
        i = a.intersection(b)
        assert a.contains(i) and b.contains(i)
        assert i.length > 0


# ----------------------------------------------------------------------
# IoOp: the op record shared by workload generators and trace replay
# ----------------------------------------------------------------------

def test_io_op_kinds_cover_the_syscall_surface():
    assert IO_OP_KINDS == ("read", "write", "fsync")


def test_io_op_defaults_and_end():
    op = IoOp("read", 3, 4096, 8192)
    assert op.time == 0.0
    assert op.o_direct is True
    assert op.end == 12288


def test_io_op_is_frozen_and_hashable():
    op = IoOp("write", 0, 0, 4096, 1.5, False)
    with pytest.raises(AttributeError):
        op.offset = 100
    assert op == IoOp("write", 0, 0, 4096, 1.5, False)
    assert len({op, IoOp("write", 0, 0, 4096, 1.5, False)}) == 1


def test_io_op_equality_distinguishes_flags():
    assert IoOp("read", 0, 0, 4096) != IoOp("read", 0, 0, 4096, o_direct=False)
