"""Observability must never perturb the simulation (the Heisenberg guard).

One scaled experiment run twice — obs fully enabled (metrics, spans,
sampler-bearing paths) vs the null facade — must produce bit-identical
results: instrumentation reads the timeline, it never advances it.

The second guard is the harvest parity property: with obs armed, a
``--workers N`` run must export **byte-identical** metrics JSON,
Prometheus text, and Chrome traces to the serial run — worker-side
telemetry is captured per shard and merged in shard order, and the
serial path performs the same capture-merge dance.
"""

import json

import pytest

from repro.bench.experiments import synthetic_defrag
from repro.constants import MIB
from repro.obs import export, hooks
from repro.obs.hooks import Instrumentation


@pytest.fixture(autouse=True)
def _restore_global_instrumentation():
    yield
    hooks.disable()


def _run_once(enabled: bool, provenance: bool = False):
    if enabled:
        context = hooks.use(Instrumentation(provenance=provenance))
    else:
        context = hooks.use(hooks.NullInstrumentation())
    with context:
        return synthetic_defrag.run(
            "ext4", "flash",
            file_size=4 * MIB,
            variants=("original", "fragpicker_b"),
            patterns=("seq_read", "stride_read"),
        )


def test_enabling_obs_is_bit_identical():
    with_obs = _run_once(enabled=True)
    without = _run_once(enabled=False)
    assert set(with_obs.cells) == set(without.cells)
    for variant in with_obs.cells:
        for pattern in with_obs.cells[variant]:
            a = with_obs.cells[variant][pattern]
            b = without.cells[variant][pattern]
            # == (not approx): virtual time must not shift by one float ulp
            assert a.throughput_mbps == b.throughput_mbps, (variant, pattern)
            assert a.defrag_write_mb == b.defrag_write_mb
            assert a.defrag_read_mb == b.defrag_read_mb
            assert a.defrag_elapsed == b.defrag_elapsed
            assert a.fragments_after == b.fragments_after
    # and the instrumented run actually captured telemetry
    sample = with_obs.cells["fragpicker_b"]["seq_read"].obs
    assert sample is not None and sample.attribution is not None
    assert without.cells["fragpicker_b"]["seq_read"].obs is None


def test_arming_provenance_is_bit_identical():
    """Causal tracing reads the timeline too: minting pids and recording
    syscall→request→command edges must not move a single virtual-time
    float vs a fully disabled run."""
    armed = _run_once(enabled=True, provenance=True)
    without = _run_once(enabled=False)
    for variant in armed.cells:
        for pattern in armed.cells[variant]:
            a = armed.cells[variant][pattern]
            b = without.cells[variant][pattern]
            assert a.throughput_mbps == b.throughput_mbps, (variant, pattern)
            assert a.defrag_write_mb == b.defrag_write_mb
            assert a.defrag_read_mb == b.defrag_read_mb
            assert a.defrag_elapsed == b.defrag_elapsed
            assert a.fragments_after == b.fragments_after
    # the armed run actually recorded causal edges
    sample = armed.cells["fragpicker_b"]["seq_read"].obs
    assert sample is not None and sample.provenance is not None
    assert sample.provenance["layer_crossing"] > 0
    assert sample.provenance["commands"] > 0


# ----------------------------------------------------------------------
# armed parity: serial vs --workers exports must match byte for byte
# ----------------------------------------------------------------------

def _renderings(obs):
    return (
        export.metrics_json(obs.registry),
        export.prometheus_text(obs.registry),
        json.dumps(export.chrome_trace(obs.spans, obs.registry)),
    )


def test_armed_fleet_smoke_exports_byte_identical_serial_vs_workers():
    from repro.fleet.controller import run_fleet
    from repro.fleet.spec import FleetConfig

    def run(workers):
        obs = Instrumentation()
        with hooks.use(obs):
            report = run_fleet(FleetConfig.smoke(volumes=4), workers=workers)
        return report, obs

    serial_report, serial_obs = run(None)
    par_report, par_obs = run(2)
    assert par_report.fingerprint == serial_report.fingerprint
    assert _renderings(par_obs) == _renderings(serial_obs)
    # the merged plane is populated: per-volume tracks, fleet counters
    metrics = serial_obs.registry.to_dict()
    assert metrics["fleet.jobs_completed"]["value"] >= 1
    assert metrics["obs.harvest.snapshots"]["value"] == 4  # one per volume
    tracks = {s.track for s in serial_obs.spans.finished_spans()}
    assert any(track.startswith("vol0000/") for track in tracks)


def test_armed_bench_smoke_exports_byte_identical_serial_vs_workers():
    from repro.bench.suite import run_suite

    def run(workers):
        obs = Instrumentation()
        with hooks.use(obs):
            document, _ = run_suite(smoke=True, obs=obs, workers=workers)
        return document, obs

    serial_doc, serial_obs = run(None)
    par_doc, par_obs = run(2)
    assert json.dumps(par_doc, sort_keys=True) == json.dumps(
        serial_doc, sort_keys=True
    )
    assert _renderings(par_obs) == _renderings(serial_obs)
    # worker figures merged onto per-shard tracks
    metrics = serial_obs.registry.to_dict()
    assert metrics["obs.harvest.snapshots"]["value"] == 3  # 2 devices + fsrv
    assert metrics["block.requests"]["value"] > 0

