"""Critical-path sweep, flamegraph, and flow-event exports."""

import re

import pytest

from repro.constants import BLOCK_SIZE, MIB
from repro.device import make_device
from repro.fs import make_filesystem
from repro.obs import hooks
from repro.obs.critical_path import (
    FLOW_TID_BASE,
    critical_path,
    flamegraph,
    flow_events,
)
from repro.obs.hooks import Instrumentation
from repro.obs.provenance import (
    CommandNode,
    ProvenanceForest,
    SubmitNode,
    SyscallTree,
    build_forest,
)


@pytest.fixture(autouse=True)
def _restore_global_instrumentation():
    yield
    hooks.disable()


def _tree(pid, op, start, end, path="/f", commands=()):
    tree = SyscallTree(pid=pid, op=op, app="db", path=path,
                       start=start, end=end, complete=True)
    tree.submits.append(SubmitNode(pid, max(1, len(commands)), start,
                                   start, start))
    tree.commands.extend(commands)
    return tree


def _cmd(pid, begin, end, device="flash", op="read"):
    return CommandNode(pid=pid, device=device, unit="channel", op=op,
                       offset=0, length=BLOCK_SIZE, issue=begin,
                       begin=begin, end=end, units=1, penalty=0.0)


def _forest(*trees):
    forest = ProvenanceForest()
    for tree in trees:
        forest.trees[tree.pid] = tree
    return forest


# -- the sweep ---------------------------------------------------------


def test_segments_sum_to_wall_clock_exactly():
    forest = _forest(
        _tree(1, "read", 0.0, 1.0, commands=[_cmd(1, 0.2, 0.9)]),
        _tree(2, "write", 2.0, 3.5, commands=[_cmd(2, 2.1, 3.4, op="write")]),
    )
    path = critical_path(forest)
    assert path.run_start == 0.0 and path.run_end == 3.5
    assert path.total == path.wall_clock  # exact, not approx
    assert path.residual == 0.0
    assert path.check()
    kinds = [s.kind for s in path.segments]
    assert kinds == ["syscall", "host", "syscall"]  # gap becomes host


def test_overlapping_syscalls_are_clipped_not_double_counted():
    # co-running actors: second call overlaps the first's tail
    forest = _forest(
        _tree(1, "read", 0.0, 2.0),
        _tree(2, "read", 1.0, 3.0),
    )
    path = critical_path(forest)
    assert path.total == path.wall_clock
    sys_segments = [s for s in path.segments if s.kind == "syscall"]
    assert [(s.start, s.end) for s in sys_segments] == [(0.0, 2.0), (2.0, 3.0)]
    assert [s.pid for s in sys_segments] == [1, 2]


def test_host_gaps_are_labelled_by_enclosing_phase_span():
    from repro.obs.spans import SpanRecorder
    spans = SpanRecorder()
    phase = spans.start("phase.before", 0.0)
    spans.finish(phase, 4.0)
    forest = _forest(
        _tree(1, "read", 0.5, 1.0),
        _tree(2, "read", 3.0, 3.5),
    )
    path = critical_path(forest, spans, start=0.0, end=4.0)
    hosts = [s for s in path.segments if s.kind == "host"]
    assert hosts and all(s.phase == "phase.before" for s in hosts)
    assert path.total == path.wall_clock
    # syscall segments inside the span share its phase: everything lands there
    assert path.by_phase() == {"phase.before": pytest.approx(4.0)}


def test_empty_forest_yields_empty_path():
    path = critical_path(ProvenanceForest())
    assert path.wall_clock == 0.0 and not path.segments
    assert path.check()


def test_to_dict_schema_and_table_render():
    forest = _forest(_tree(1, "read", 0.0, 1.0))
    path = critical_path(forest)
    doc = path.to_dict()
    assert doc["schema"] == "repro.obs.critical_path/v1"
    assert doc["ok"] is True
    assert "check OK" in path.table()


# -- flamegraph --------------------------------------------------------


def test_flamegraph_collapsed_stack_format():
    forest = _forest(
        _tree(1, "read", 0.0, 1.0, commands=[_cmd(1, 0.2, 0.9)]),
    )
    text = flamegraph(forest)
    assert text.endswith("\n")
    for line in text.splitlines():
        assert re.fullmatch(r"\S+ \d+", line), line
        stack = line.split(" ")[0]
        assert stack.startswith("run;")
    # the device service frame dominates this tree
    assert any("flash.read" in line for line in text.splitlines())


def test_flamegraph_weights_are_integer_microseconds():
    forest = _forest(
        _tree(1, "read", 0.0, 1.0, commands=[_cmd(1, 0.25, 0.75)]),
    )
    weights = dict(
        line.rsplit(" ", 1) for line in flamegraph(forest).splitlines()
    )
    assert weights["run;run;read:db;flash.read"] == str(500_000)


# -- flow events -------------------------------------------------------


def test_flow_events_pair_start_and_finish_per_pid():
    forest = _forest(
        _tree(1, "read", 0.0, 1.0, commands=[_cmd(1, 0.2, 0.9)]),
        _tree(2, "write", 1.0, 2.0, commands=[_cmd(2, 1.3, 1.9, op="write")]),
    )
    events = flow_events(forest)
    starts = {e["id"]: e for e in events if e["ph"] == "s"}
    finishes = {e["id"]: e for e in events if e["ph"] == "f"}
    assert set(starts) == set(finishes) == {1, 2}
    for pid in starts:
        assert finishes[pid]["bp"] == "e"
        assert finishes[pid]["ts"] >= starts[pid]["ts"]
    # slices land on the reserved provenance tid namespace
    slices = [e for e in events if e["ph"] == "X"]
    assert slices and all(e["tid"] >= FLOW_TID_BASE for e in slices)
    assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in slices)


# -- end to end over the real stack ------------------------------------


def test_real_run_critical_path_checks_out():
    obs = Instrumentation(provenance=True)
    hooks.install(obs)
    device = make_device("flash", capacity=64 * MIB)
    fs = make_filesystem("ext4", device, metadata_region=4 * MIB)
    handle = fs.open("/f", o_direct=True, app="db", create=True)
    now = 0.0
    for i in range(16):
        now = fs.write(handle, i * BLOCK_SIZE, BLOCK_SIZE, now=now).finish_time
    for i in range(16):
        now = fs.read(handle, i * BLOCK_SIZE, BLOCK_SIZE, now=now).finish_time
    forest = build_forest(obs.spans)
    assert len(forest.layer_crossing()) == 32
    path = critical_path(forest, obs.spans)
    assert path.check()
    assert path.total == pytest.approx(path.wall_clock)
    assert flamegraph(forest, obs.spans)  # non-empty profile
