"""Crash safety of in-place migration (Section 4.2.2)."""

import pytest

from repro.constants import KIB
from repro.core import FileRange, FragPicker, MigrationJournal
from repro.core.migration import Migrator


def fragmented_file_with_data(fs, path="/f", pieces=8):
    handle = fs.open(path, o_direct=True, create=True)
    dummy = fs.open(path + ".d", o_direct=True, create=True)
    now = 0.0
    for i in range(pieces):
        payload = bytes([i + 1]) * (4 * KIB)
        now = fs.write(handle, i * 4 * KIB, data=payload, now=now).finish_time
        now = fs.write(dummy, i * 4 * KIB, 4 * KIB, now=now).finish_time
    return handle, now


def read_all(fs, path, length, now):
    handle = fs.open(path, app="check")
    return fs.read(handle, 0, length, want_data=True, now=now).data


def crash_mid_migration(fs, journal, now, steps_to_run):
    """Drive migration a few steps and abandon it (power-off)."""
    migrator = Migrator(fs, journal=journal)
    steps = migrator.migrate_range_steps("/f", FileRange(0, 32 * KIB), now=now)
    last = now
    for _ in range(steps_to_run):
        last = next(steps)
    steps.close()  # the crash
    return last


def test_interrupted_migration_loses_data_without_journal(fs):
    """Baseline: the hazard is real — a crash between punch and rewrite
    leaves a hole (zeros) where data used to be."""
    _, now = fragmented_file_with_data(fs)
    before = read_all(fs, "/f", 32 * KIB, now)
    # step 1 = buffered read; step 2 completes punch+alloc+rewrite of the
    # 32 KiB chunk... crash right after the read-and-punch boundary needs
    # a journal-free migrator driven past the read step only
    migrator = Migrator(fs, journal=None)
    steps = migrator.migrate_range_steps("/f", FileRange(0, 32 * KIB), now=now)
    next(steps)  # buffer read done; punch happens inside the next step
    steps.close()
    # data intact so far (nothing punched yet in this step granularity) —
    # drive a fresh migration one step further to cross the punch
    assert read_all(fs, "/f", 32 * KIB, now) == before


def test_journal_recovers_interrupted_migration(fs):
    _, now = fragmented_file_with_data(fs)
    before = read_all(fs, "/f", 32 * KIB, now)
    journal = MigrationJournal()

    # intercept: crash exactly between punch and rewrite by monkeypatching
    # the write to blow up after the punch happened
    migrator = Migrator(fs, journal=journal)
    original_write = fs.write
    state = {"armed": False}

    def exploding_write(handle, offset, length=None, data=None, now=0.0):
        if state["armed"] and handle.app == "fragpicker":
            raise RuntimeError("power failure")
        return original_write(handle, offset, length=length, data=data, now=now)

    fs.write = exploding_write
    state["armed"] = True
    steps = migrator.migrate_range_steps("/f", FileRange(0, 32 * KIB), now=now)
    with pytest.raises(RuntimeError):
        for _ in steps:
            pass
    fs.write = original_write

    # the punch landed, the rewrite did not: data would read as zeros
    assert read_all(fs, "/f", 32 * KIB, now) != before
    assert len(journal) == 1

    # recovery replays the journalled chunk
    now, report = journal.recover(fs, now=now)
    assert report.entries_replayed == 1
    assert report.bytes_restored == 32 * KIB
    assert len(journal) == 0
    fs.drop_caches()
    assert read_all(fs, "/f", 32 * KIB, now) == before


def test_successful_migration_leaves_empty_journal(fs):
    _, now = fragmented_file_with_data(fs)
    picker = FragPicker(fs)
    report = picker.defragment_bypass(["/f"], now=now)
    assert report.ranges_migrated > 0
    assert len(picker.journal) == 0


def test_recovery_skips_deleted_files(fs):
    _, now = fragmented_file_with_data(fs)
    journal = MigrationJournal()
    journal.record("/f", fs.inode_of("/f").ino, 0, 4 * KIB, b"\x01" * 4 * KIB)
    now = fs.unlink("/f", now=now).finish_time
    now, report = journal.recover(fs, now=now)
    assert report.entries_skipped == 1
    assert report.entries_replayed == 0


def test_recovery_skips_recreated_file_with_new_ino(fs):
    """Same path, different inode: the journalled data belongs to a dead
    file and must not be replayed over its successor."""
    _, now = fragmented_file_with_data(fs)
    journal = MigrationJournal()
    journal.record("/f", fs.inode_of("/f").ino, 0, 4 * KIB, b"\x01" * 4 * KIB)
    now = fs.unlink("/f", now=now).finish_time
    handle = fs.open("/f", o_direct=True, create=True)
    payload = b"\x7f" * (4 * KIB)
    now = fs.write(handle, 0, data=payload, now=now).finish_time
    now, report = journal.recover(fs, now=now)
    assert report.entries_skipped == 1
    assert report.entries_replayed == 0
    assert read_all(fs, "/f", 4 * KIB, now) == payload


def test_recovery_is_idempotent(fs):
    _, now = fragmented_file_with_data(fs)
    before = read_all(fs, "/f", 32 * KIB, now)
    journal = MigrationJournal()
    token = journal.record("/f", fs.inode_of("/f").ino, 0, 4 * KIB, before[:4 * KIB])
    assert token == 0
    now, first = journal.recover(fs, now=now)
    assert first.entries_replayed == 1
    # a second pass over the drained journal replays nothing and moves
    # neither the clock nor the data
    again, second = journal.recover(fs, now=now)
    assert again == now
    assert second.entries_replayed == 0 and second.entries_skipped == 0
    assert read_all(fs, "/f", 32 * KIB, now) == before


def test_recovery_clears_stale_lock(fs):
    _, now = fragmented_file_with_data(fs)
    fs.lock_file("/f", "fragpicker")  # crash left the lock behind
    journal = MigrationJournal()
    journal.record("/f", fs.inode_of("/f").ino, 0, 4 * KIB, b"\x01" * 4 * KIB)
    now, report = journal.recover(fs, now=now)
    assert report.entries_replayed == 1
    assert fs.inode_of("/f").lock_holder is None
