"""Admission + throttling edge cases: the fleet's two brakes."""

import pytest

from repro.constants import KIB, MIB
from repro.fleet import AdmissionController, FleetConfig, TickBudget, run_fleet


# ----------------------------------------------------------------------
# TickBudget
# ----------------------------------------------------------------------

def test_budget_strict_pre_reservation():
    budget = TickBudget(per_tick=1 * MIB)
    budget.begin_tick()
    assert budget.try_reserve(512 * KIB)
    assert budget.try_reserve(512 * KIB)
    # exhausted mid-tick: the next range must wait, spend is untouched
    assert not budget.try_reserve(1)
    assert budget.spent_this_tick == 1 * MIB
    # a fresh tick window clears the brake (nothing banks across ticks)
    budget.begin_tick()
    assert budget.try_reserve(1 * MIB)
    budget.close()
    assert budget.history == [1 * MIB, 1 * MIB]
    assert budget.spent_total == 2 * MIB


def test_budget_unlimited_and_remaining():
    budget = TickBudget(per_tick=None)
    budget.begin_tick()
    assert budget.remaining is None
    assert budget.try_reserve(10 * MIB)
    limited = TickBudget(per_tick=4 * MIB)
    limited.begin_tick()
    limited.try_reserve(1 * MIB)
    assert limited.remaining == 3 * MIB


def test_budget_rejects_negative():
    budget = TickBudget(per_tick=1 * MIB)
    budget.begin_tick()
    with pytest.raises(ValueError):
        budget.try_reserve(-1)


# ----------------------------------------------------------------------
# AdmissionController
# ----------------------------------------------------------------------

def test_admission_cap_and_fifo_deferral():
    admission = AdmissionController(max_jobs=1, budget=TickBudget(None))
    assert admission.request("vol0")
    assert admission.request("vol1")
    assert not admission.request("vol1")  # idempotent while queued
    admitted = admission.admit(lambda name: name)
    assert [job for job in admitted] == ["vol0"]
    assert admission.deferred_ticks == 1  # vol1 waited this tick
    assert not admission.request("vol0")  # idempotent while running
    # the slot frees, the deferred volume is re-admitted next tick
    admission.finish("vol0")
    assert admission.admit(lambda name: name) == ["vol1"]
    assert admission.completed == 1
    assert admission.admitted == 2


# ----------------------------------------------------------------------
# controller-level edge cases (whole runs, smoke scale)
# ----------------------------------------------------------------------

def test_zero_volume_fleet_runs_clean():
    report = run_fleet(FleetConfig(volumes=0, ticks=2))
    assert report.volumes == 0
    assert report.jobs_admitted == 0
    assert report.fg_ops == 0
    assert report.fg_read_p99_s == 0.0
    assert report.budget_ok
    assert len(report.ticks) == 2


def test_all_volumes_below_trigger_admits_nothing():
    report = run_fleet(FleetConfig.smoke(volumes=4, seed=0, trigger=1e9))
    assert report.volumes_above_start == 0
    assert report.jobs_admitted == 0
    assert report.migrated_payload_bytes == 0
    assert report.fg_ops > 0  # foreground still ran


def test_budget_exhausted_mid_tick_resumes_next_tick():
    # a budget far smaller than one volume's fragmented payload: the job
    # must park mid-tick and finish over several windows
    report = run_fleet(FleetConfig.smoke(
        volumes=2, seed=0, budget_per_tick=256 * KIB, ticks=10,
    ))
    assert report.jobs_admitted >= 1
    assert report.jobs_budget_blocked_ticks >= 1
    spends = [row.migrated_bytes for row in report.ticks]
    assert max(spends) <= 256 * KIB  # never over budget
    assert sum(1 for s in spends if s > 0) >= 2  # resumed across ticks


def test_deferred_volume_readmitted_when_slot_frees():
    # several heavy volumes, one job slot: somebody must queue, and the
    # queue must drain as slots free up
    report = run_fleet(FleetConfig.smoke(
        volumes=6, seed=1, max_jobs=1, ticks=10,
    ))
    assert report.jobs_admitted >= 2
    assert report.jobs_deferred_ticks >= 1
    assert max(row.jobs_running for row in report.ticks) <= 1


def test_promote_moves_queued_volume_to_front():
    budget = TickBudget(None)
    admission = AdmissionController(max_jobs=1, budget=budget)
    for name in ("a", "b", "c"):
        admission.request(name)
    assert admission.promote("c")
    assert list(admission.queue) == ["c", "a", "b"]
    # the next admission pass services the promoted volume first
    admitted = admission.admit(lambda name: name)
    assert admitted == ["c"]


def test_promote_never_admits_unqueued_volumes():
    budget = TickBudget(None)
    admission = AdmissionController(max_jobs=2, budget=budget)
    admission.request("a")
    # unknown volume: gating reorders, it never invents admissions
    assert not admission.promote("ghost")
    assert list(admission.queue) == ["a"]
    # running volume: not queued either, promote is a no-op
    admission.admit(lambda name: name)
    assert not admission.promote("a")
    assert list(admission.queue) == []


def test_promote_is_stable_for_front_volume():
    budget = TickBudget(None)
    admission = AdmissionController(max_jobs=1, budget=budget)
    admission.request("a")
    admission.request("b")
    assert admission.promote("a")
    assert list(admission.queue) == ["a", "b"]
