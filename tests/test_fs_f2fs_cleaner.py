"""F2FS segment cleaning."""

import pytest

from repro.constants import GIB, KIB, MIB
from repro.device import make_device
from repro.fs import make_filesystem
from repro.fs.f2fs import SEGMENT_SIZE


def dirty_f2fs():
    """An F2FS whose early segments are checkerboards of live/dead data."""
    fs = make_filesystem("f2fs", make_device("flash", capacity=1 * GIB))
    keep = fs.open("/keep", o_direct=True, create=True)
    churn = fs.open("/churn", o_direct=True, create=True)
    now = 0.0
    for i in range(256):  # 2 MiB of interleaved 4 KiB writes
        now = fs.write(keep, i * 4 * KIB, 4 * KIB, now=now).finish_time
        now = fs.write(churn, i * 4 * KIB, 4 * KIB, now=now).finish_time
    now = fs.unlink("/churn", now=now).finish_time  # kill half the segment
    return fs, now


def test_cleaning_creates_whole_free_segments():
    fs, now = dirty_f2fs()
    victim = fs._pick_victim_window()
    assert victim is not None
    free_in_victim_before = fs._segment_free_bytes().get(victim, 0)
    assert 0 < free_in_victim_before < SEGMENT_SIZE
    now, cleaned = fs.clean_segments(count=1, now=now)
    assert cleaned == 1
    # the victim window is now one whole free segment
    assert fs._segment_free_bytes().get(victim, 0) == SEGMENT_SIZE


def test_cleaning_preserves_data():
    fs, now = dirty_f2fs()
    handle = fs.open("/keep", app="check")
    fs2_data_before = fs.page_store.read(fs.inode_of("/keep").ino, 0, 1 * MIB)
    now, cleaned = fs.clean_segments(count=4, now=now)
    assert cleaned >= 1
    inode = fs.inode_of("/keep")
    inode.extent_map.check_invariants()
    fs.free_space.check_invariants()
    assert inode.extent_map.mapped_bytes == 1 * MIB
    # file reads the same bytes afterwards
    assert fs.page_store.read(inode.ino, 0, 1 * MIB) == fs2_data_before


def test_cleaning_compacts_live_data():
    """Relocated data lands densely at the log head (defrag side effect,
    the AALFS observation)."""
    fs, now = dirty_f2fs()
    frags_before = fs.inode_of("/keep").fragment_count()
    now, _ = fs.clean_segments(count=8, now=now)
    assert fs.inode_of("/keep").fragment_count() < frags_before


def test_cleaning_does_io():
    fs, now = dirty_f2fs()
    before = fs.tracer.tag("gc").snapshot()
    now, cleaned = fs.clean_segments(count=2, now=now)
    delta = fs.tracer.tag("gc").delta(before)
    assert delta.read_bytes > 0
    assert delta.write_bytes == delta.read_bytes


def test_nothing_to_clean_on_fresh_fs():
    fs = make_filesystem("f2fs", make_device("flash", capacity=1 * GIB))
    now, cleaned = fs.clean_segments(count=3)
    assert cleaned == 0
