"""The bypass option and fragmentation checking."""

from repro.constants import KIB, READAHEAD_SIZE
from repro.core import FileRange, bypass_range_list, range_is_fragmented


def test_bypass_slices_by_readahead(fs):
    handle = fs.open("/f", o_direct=True, create=True)
    fs.write(handle, 0, 300 * KIB)
    plan = bypass_range_list(fs, "/f")
    assert [r.start for r in plan.ranges] == [0, 128 * KIB, 256 * KIB]
    assert plan.ranges[-1].end == 300 * KIB
    assert all(r.count == 1 for r in plan.ranges)


def test_bypass_custom_window(fs):
    handle = fs.open("/f", o_direct=True, create=True)
    fs.write(handle, 0, 128 * KIB)
    plan = bypass_range_list(fs, "/f", readahead_size=64 * KIB)
    assert len(plan.ranges) == 2


def test_bypass_empty_file(fs):
    fs.create("/empty")
    assert bypass_range_list(fs, "/empty").ranges == []


def test_range_is_fragmented(fs):
    target = fs.open("/f", o_direct=True, create=True)
    dummy = fs.open("/d", o_direct=True, create=True)
    now = 0.0
    for i in range(4):
        now = fs.write(target, i * 4 * KIB, 4 * KIB, now=now).finish_time
        now = fs.write(dummy, i * 4 * KIB, 4 * KIB, now=now).finish_time
    now = fs.write(target, 16 * KIB, 128 * KIB, now=now).finish_time
    # the interleaved head is fragmented
    assert range_is_fragmented(fs, "/f", FileRange(0, 16 * KIB))
    # the single 128 KiB extent is not
    assert not range_is_fragmented(fs, "/f", FileRange(16 * KIB, 144 * KIB))
    # a single-block range can never be fragmented
    assert not range_is_fragmented(fs, "/f", FileRange(0, 4 * KIB))
