"""MicroSD: command serialization and the demand mapping cache."""

from repro.block import IoCommand, IoOp
from repro.constants import GIB, KIB, MIB
from repro.device.microsd import MicroSdDevice, MicroSdParams


def read(offset, length=4 * KIB):
    return IoCommand(IoOp.READ, offset, length)


def test_per_command_overhead_dominates_small_io():
    card = MicroSdDevice(capacity=1 * GIB)
    one = card.submit([read(0, 128 * KIB)], 0.0)
    card2 = MicroSdDevice(capacity=1 * GIB)
    split = card2.submit([read(i * 8 * KIB) for i in range(32)], 0.0)
    # 32 serialized command overheads vs one
    assert split.latency > 2.0 * one.latency


def test_mapping_cache_hits_on_locality():
    card = MicroSdDevice(capacity=1 * GIB)
    card.submit([read(0)], 0.0)
    card.submit([read(4 * KIB)], 1.0)  # same mapping region
    assert card.mapping_misses == 1
    assert card.mapping_hits == 1


def test_mapping_cache_misses_on_spread():
    params = MicroSdParams(mapping_cache_entries=4)
    card = MicroSdDevice(capacity=1 * GIB, params=params)
    for i in range(8):
        card.submit([read(i * 2 * MIB)], float(i))  # distinct regions
    assert card.mapping_misses == 8
    # LRU evicted early entries: re-reading region 0 misses again
    card.submit([read(0)], 100.0)
    assert card.mapping_misses == 9


def test_mapping_cache_lru_recency():
    params = MicroSdParams(mapping_cache_entries=2)
    card = MicroSdDevice(capacity=1 * GIB, params=params)
    card.submit([read(0)], 0.0)              # region 0
    card.submit([read(2 * MIB)], 1.0)        # region 2
    card.submit([read(0)], 2.0)              # touch region 0 (hit)
    card.submit([read(4 * MIB)], 3.0)        # evicts region 2
    card.submit([read(0)], 4.0)              # still cached
    assert card.mapping_hits == 2


def test_writes_slower_than_reads():
    card = MicroSdDevice(capacity=1 * GIB)
    r = card.submit([read(0, 1 * MIB)], 0.0)
    card2 = MicroSdDevice(capacity=1 * GIB)
    w = card2.submit([IoCommand(IoOp.WRITE, 0, 1 * MIB)], 0.0)
    assert w.latency > r.latency
