"""Smoke tests of the experiment modules at tiny scales.

The full-scale runs live in benchmarks/; these keep the experiment code
itself covered by the fast unit suite, and pin the headline shape of each
at miniature size.
"""

import pytest

from repro.constants import KIB, MIB
from repro.bench.experiments import (
    ablation_phases,
    ablation_splitting,
    ext_endurance,
    ext_pba_defrag,
    ext_recurrence,
    fig4_frag_metrics,
    fig12_hotness,
    sec522_discard_cost,
    synthetic_defrag,
)


def test_fig4_tiny():
    result = fig4_frag_metrics.run(
        devices=("optane",),
        file_size=4 * MIB,
        distance_file_size=1 * MIB,
        frag_sizes=[4 * KIB, 64 * KIB, 128 * KIB, 256 * KIB],
        frag_distances=[4 * KIB, 1024 * KIB],
    )
    row = result.sweeps["optane"].table1_row()
    assert row["cc_size_before"] > 0.5
    assert result.table1()
    assert result.figure4()


def test_synthetic_defrag_tiny():
    result = synthetic_defrag.run(
        "ext4", "optane", file_size=1 * MIB,
        variants=("original", "fragpicker"), patterns=("seq_read",),
    )
    fp = result.cell("fragpicker", "seq_read")
    orig = result.cell("original", "seq_read")
    assert fp.throughput_mbps > orig.throughput_mbps
    assert result.report()


def test_fig12_tiny():
    result = fig12_hotness.run(file_size=2 * MIB + 512 * KIB + 512 * KIB,
                               ops=200, criteria=[0.25, 1.0])
    assert set(result.sweeps) == {"uniform", "zipfian"}
    for points in result.sweeps.values():
        assert points[0].write_mb <= points[-1].write_mb + 0.01


def test_discard_tiny():
    result = sec522_discard_cost.run(file_size=8 * MIB)
    assert result.cost["fragpicker"] < result.cost["original"]


def test_splitting_tiny():
    result = ablation_splitting.run("flash", file_size=1 * MIB,
                                    frag_sizes=[4 * KIB, 128 * KIB])
    assert result.points[0].commands_per_syscall > result.points[1].commands_per_syscall


def test_phases_tiny():
    result = ablation_phases.run(file_size=1 * MIB)
    assert set(result.cells) == {"full", "no_merge", "no_check", "no_readahead"}


def test_endurance_tiny():
    result = ext_endurance.run(file_size=1 * MIB)
    assert result.cells["fragpicker"].pages_programmed < result.cells["conventional"].pages_programmed


def test_pba_tiny():
    result = ext_pba_defrag.run(file_size=1 * MIB)
    assert result.pba_fragpicker_mbps > result.stock_fragpicker_mbps


def test_recurrence_tiny():
    result = ext_recurrence.run(cycles=2)
    assert result.runs["fragpicker"].total_write_mb < result.runs["e4defrag"].total_write_mb
