"""Alignment helpers."""

import pytest

from repro.constants import (
    BLOCK_SIZE,
    KIB,
    MIB,
    READAHEAD_SIZE,
    block_align_down,
    block_align_up,
    blocks,
)


def test_unit_relationships():
    assert BLOCK_SIZE == 4 * KIB
    assert READAHEAD_SIZE == 128 * KIB
    assert MIB == 1024 * KIB


def test_blocks_ceiling():
    assert blocks(0) == 0
    assert blocks(1) == 1
    assert blocks(BLOCK_SIZE) == 1
    assert blocks(BLOCK_SIZE + 1) == 2
    assert blocks(10 * BLOCK_SIZE) == 10


def test_align_down():
    assert block_align_down(0) == 0
    assert block_align_down(BLOCK_SIZE - 1) == 0
    assert block_align_down(BLOCK_SIZE) == BLOCK_SIZE
    assert block_align_down(BLOCK_SIZE + 1) == BLOCK_SIZE


def test_align_up():
    assert block_align_up(0) == 0
    assert block_align_up(1) == BLOCK_SIZE
    assert block_align_up(BLOCK_SIZE) == BLOCK_SIZE
    assert block_align_up(BLOCK_SIZE + 1) == 2 * BLOCK_SIZE


@pytest.mark.parametrize("value", [0, 1, 4095, 4096, 4097, 123456789])
def test_align_sandwich(value):
    assert block_align_down(value) <= value <= block_align_up(value)
    assert block_align_down(value) % BLOCK_SIZE == 0
    assert block_align_up(value) % BLOCK_SIZE == 0
