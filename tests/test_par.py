"""The parallel engine: canonical merge, failure modes, determinism.

Spawned pools cost real wall-clock on small hosts, so every parallel
test here uses the smallest config that still proves its property; the
serial-equivalence guarantees these tests pin are what lets every other
suite in the repo stay serial.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import InvalidArgument
from repro.faults import hooks as fault_hooks
from repro.faults.campaign import CampaignConfig, run_campaign_series
from repro.fleet.controller import run_fleet
from repro.fleet.spec import FleetConfig
from repro.fs import extent_map
from repro.obs import hooks as obs_hooks
from repro.obs.hooks import Instrumentation
from repro.par import (
    ParallelPlan,
    ShardError,
    StickyPool,
    resolve_workers,
    run_sharded,
)
from repro.replay.formats import BinaryTraceReader
from repro.replay.generate import TraceProfile, generate_trace


# ----------------------------------------------------------------------
# module-level shard functions (must pickle into spawn workers)
# ----------------------------------------------------------------------

def _square(x):
    return x * x


def _fail_on_two(x):
    if x == 2:
        raise ValueError("two is right out")
    return x


def _sleep_then_value(payload):
    delay, value = payload
    time.sleep(delay)
    return value


def _report_globals(_):
    obs = obs_hooks.current()
    # with an armed parent, the shard runs under a *fresh* harvest child
    # — never the parent's registry, never a polluted one: every metric
    # zero, no spans, no events
    obs_is_clean = obs is obs_hooks.NULL or (
        not obs.spans.spans
        and not obs.spans.events
        and all(
            not entry.get("value") and not entry.get("count")
            for entry in obs.registry.to_dict().values()
        )
    )
    return (
        extent_map.DEBUG_CHECKS,
        obs_is_clean,
        fault_hooks.current() is fault_hooks.NULL,
    )


class _Adder:
    """Stateful StickyPool shard: remembers its base across calls."""

    def __init__(self, base):
        self.base = base
        self.calls = 0

    def add(self, x):
        self.calls += 1
        return self.base + x

    def total_calls(self):
        return self.calls


def _make_adder(base):
    return _Adder(base)


def _broken_factory(_):
    raise RuntimeError("no shard for you")


# ----------------------------------------------------------------------
# ParallelPlan / run_sharded
# ----------------------------------------------------------------------

def test_resolve_workers_validation():
    assert resolve_workers(None) is None
    assert resolve_workers(1) == 1
    assert resolve_workers(8) == 8
    with pytest.raises(InvalidArgument):
        resolve_workers(0)
    with pytest.raises(InvalidArgument):
        resolve_workers(-3)


def test_serial_path_runs_in_process():
    # workers=None never spawns: a closure (unpicklable) works fine
    seen = []

    def record(x):
        seen.append(x)
        return x + 1

    plan = ParallelPlan(record, [1, 2, 3])
    assert plan.run() == [2, 3, 4]
    assert seen == [1, 2, 3]
    assert plan.stats.shards == 3 and not plan.stats.parallel


def test_empty_payloads_short_circuit():
    plan = ParallelPlan(_square, [], workers=4)
    assert plan.run() == []
    assert not plan.stats.parallel


def test_merge_is_shard_order_not_completion_order():
    # shard 0 sleeps past shard 1's finish; the merge must still return
    # results in payload order
    results = run_sharded(
        _sleep_then_value, [(0.4, "slow"), (0.0, "fast")], workers=2
    )
    assert results == ["slow", "fast"]


def test_shard_error_carries_index_and_discards_partials():
    with pytest.raises(ShardError) as excinfo:
        run_sharded(_fail_on_two, [1, 2, 3], workers=2)
    error = excinfo.value
    assert error.shard == 1
    assert error.cause_type == "ValueError"
    assert "two is right out" in str(error)
    assert "ValueError" in error.traceback_text


def test_timeout_falls_back_to_serial_and_counts():
    obs = Instrumentation()
    with obs_hooks.use(obs):
        plan = ParallelPlan(
            _sleep_then_value, [(0.75, "late")], workers=1, timeout_s=0.05
        )
        assert plan.run() == ["late"]
    assert plan.stats.timeouts == 1
    assert plan.stats.serial_fallbacks == 1
    metrics = obs.registry.to_dict()
    assert metrics["par.shard_timeouts"]["value"] == 1
    assert metrics["par.serial_fallbacks"]["value"] == 1
    assert metrics["par.plans"]["value"] == 1
    assert metrics["par.shards"]["value"] == 1


def test_worker_state_is_scrubbed_despite_polluted_parent():
    # arm every global the parent could leak; the worker must still see
    # a fresh process (satellite: worker-first-result == fresh-process)
    plane = fault_hooks.FaultPlane(
        FleetConfig.smoke(volumes=2, faults=True).fault_plan()
    )
    extent_map.DEBUG_CHECKS = True
    try:
        with obs_hooks.use(Instrumentation()):
            with fault_hooks.use(plane):
                (state,) = run_sharded(_report_globals, [0], workers=1)
    finally:
        extent_map.DEBUG_CHECKS = False
    debug_checks, obs_is_clean, faults_is_null = state
    assert debug_checks is False
    assert obs_is_clean and faults_is_null


def test_campaign_series_identity_under_polluted_parent():
    config = CampaignConfig(seed=5, files=2)
    clean = run_campaign_series(config, trials=2)
    extent_map.DEBUG_CHECKS = True
    try:
        with obs_hooks.use(Instrumentation()):
            polluted = run_campaign_series(config, trials=2, workers=2)
    finally:
        extent_map.DEBUG_CHECKS = False
    assert polluted.to_dict() == clean.to_dict()
    assert polluted.fingerprint == clean.fingerprint


# ----------------------------------------------------------------------
# StickyPool
# ----------------------------------------------------------------------

def test_sticky_pool_call_shapes():
    with StickyPool(_make_adder, [10, 20]) as pool:
        assert len(pool) == 2
        assert pool.call(0, "add", 5) == 15
        assert pool.call_all("add", 1) == [11, 21]
        assert pool.call_each([(1, "add", (2,)), (0, "add", (3,))]) == [22, 13]
        # state persisted across calls within each worker
        assert pool.call_all("total_calls") == [3, 2]


def test_sticky_pool_build_failure_raises_shard_error():
    with pytest.raises(ShardError) as excinfo:
        StickyPool(_broken_factory, [0])
    assert excinfo.value.shard == 0
    assert "no shard for you" in str(excinfo.value)


# ----------------------------------------------------------------------
# serial-vs-parallel document identity
# ----------------------------------------------------------------------

def test_fleet_report_byte_identical_and_guards():
    config = FleetConfig.smoke(volumes=4, seed=3)
    serial = run_fleet(config)
    parallel = run_fleet(config, workers=2)
    assert parallel.to_json() == serial.to_json()
    assert parallel.fingerprint == serial.fingerprint
    with pytest.raises(InvalidArgument):
        run_fleet(FleetConfig.smoke(volumes=2, faults=True), workers=2)
    with pytest.raises(InvalidArgument):
        run_fleet(config, workers=2, on_tick=lambda *a: None)


def test_perf_fingerprint_identical(tmp_path):
    from repro.perf import suite

    doc_serial, res_serial = suite.run_suite(smoke=True, profile=False)
    doc_par, res_par = suite.run_suite(smoke=True, profile=False, workers=2)
    assert doc_par["fingerprint"] == doc_serial["fingerprint"]
    assert list(doc_par["layers"]) == list(doc_serial["layers"])
    assert [r.ops for r in res_par] == [r.ops for r in res_serial]


def test_replay_chunked_corpus_worker_count_invariant(tmp_path):
    profile = TraceProfile(ops=6_000, seed=9)
    one = tmp_path / "w1.bin"
    two = tmp_path / "w2.bin"
    n1 = generate_trace(str(one), profile, workers=1, chunk_ops=1_500)
    n2 = generate_trace(str(two), profile, workers=2, chunk_ops=1_500)
    assert n1 == n2
    assert one.read_bytes() == two.read_bytes()
    reader = BinaryTraceReader(str(one))
    assert sum(1 for _ in reader) == n1
    assert reader.stats.malformed == 0
    assert reader.stats.out_of_order == 0
