"""The fault-plan DSL: validation and fluent builders."""

import pytest

from repro.errors import InvalidArgument
from repro.faults import FaultPlan, FaultRule


def test_unknown_kind_rejected():
    with pytest.raises(InvalidArgument):
        FaultRule(site="fs.write", kind="gremlin")


def test_probability_bounds():
    with pytest.raises(InvalidArgument):
        FaultRule(site="fs", kind="io_error", probability=1.5)
    with pytest.raises(InvalidArgument):
        FaultRule(site="fs", kind="io_error", probability=-0.1)
    FaultRule(site="fs", kind="io_error", probability=0.0)
    FaultRule(site="fs", kind="io_error", probability=1.0)


def test_after_ops_is_one_based():
    with pytest.raises(InvalidArgument):
        FaultRule(site="fs", kind="crash", after_ops=0)
    FaultRule(site="fs", kind="crash", after_ops=1)


def test_torn_fraction_bounds():
    with pytest.raises(InvalidArgument):
        FaultRule(site="fs.write", kind="torn", torn_fraction=1.0)
    FaultRule(site="fs.write", kind="torn", torn_fraction=0.0)


def test_max_fires_nonnegative():
    with pytest.raises(InvalidArgument):
        FaultRule(site="fs", kind="io_error", max_fires=-1)


def test_fluent_builders_chain():
    plan = (
        FaultPlan(seed=3)
        .io_error("device.submit", op="read")
        .latency_spike("fs.fsync", latency=0.25)
        .torn_write("fs.write", torn_fraction=0.25)
        .crash("fs", after_ops=9)
    )
    kinds = [rule.kind for rule in plan.rules]
    assert kinds == ["io_error", "latency", "torn", "crash"]
    assert plan.rules[1].latency == 0.25
    assert plan.rules[2].op == "write"  # torn implies write
    assert plan.rules[3].after_ops == 9
    assert plan.seed == 3


def test_scaled_multiplies_probabilities_and_caps():
    plan = (
        FaultPlan(seed=1)
        .io_error("fs.write", probability=0.2)
        .io_error("fs.read", probability=0.8)
        .crash("fs", after_ops=1)
    )
    scaled = plan.scaled(2.0)
    assert scaled.seed == plan.seed
    assert scaled.rules[0].probability == pytest.approx(0.4)
    assert scaled.rules[1].probability == 1.0  # capped
    assert scaled.rules[2].probability is None  # deterministic rules untouched
    # original untouched
    assert plan.rules[0].probability == pytest.approx(0.2)
