"""SQLite-like paged database."""

import pytest

from repro.constants import GIB, KIB
from repro.device import make_device
from repro.errors import InvalidArgument
from repro.fs import make_filesystem
from repro.workloads.sqlite_like import SqliteConfig, SqliteLike


def make(fs_type="btrfs"):
    fs = make_filesystem(fs_type, make_device("microsd", capacity=1 * GIB))
    return fs, SqliteLike(fs)


def test_inserts_commit_pages():
    fs, db = make()
    now = db.load_sequential(100, 1024, 0.0)
    assert db.rows == 100
    assert db.db_size >= 100 * 1024
    assert fs.exists("/db.sqlite")


def test_journal_written_and_reset():
    fs, db = make()
    journal_writes_before = fs.tracer.tag("sqlite").write_bytes
    now = db.load_sequential(50, 1024, 0.0)
    assert fs.tracer.tag("sqlite").write_bytes > journal_writes_before
    assert fs.inode_of("/db.sqlite-journal").size == 0  # reset after load


def test_overflow_rows_supported():
    fs, db = make()
    now = db.load_sequential(10, 4096, 0.0)  # rows bigger than a page
    assert db.db_size >= 10 * 4096


def test_fragments_on_cow_filesystem():
    fs, db = make("btrfs")
    db.load_sequential(200, 1024, 0.0)
    assert fs.inode_of("/db.sqlite").fragment_count() > 10


def test_select_scans_fraction():
    fs, db = make()
    now = db.load_sequential(200, 1024, 0.0)
    fs.drop_caches()
    reads_before = fs.device.stats.read_bytes
    now, elapsed = db.select_fraction(0.5, now)
    scanned = fs.device.stats.read_bytes - reads_before
    assert elapsed > 0
    assert abs(scanned - db.db_size // 2) <= 128 * KIB


def test_select_fraction_validated():
    fs, db = make()
    db.load_sequential(10, 100, 0.0)
    with pytest.raises(InvalidArgument):
        db.select_fraction(0.0)
    with pytest.raises(InvalidArgument):
        db.select_fraction(1.5)


def test_async_mode_fewer_syncs():
    fs = make_filesystem("btrfs", make_device("microsd", capacity=1 * GIB))
    sync_db = SqliteLike(fs, SqliteConfig(db_path="/sync.db", synchronous=True))
    t_sync = sync_db.load_sequential(100, 1024, 0.0)
    fs2 = make_filesystem("btrfs", make_device("microsd", capacity=1 * GIB))
    async_db = SqliteLike(fs2, SqliteConfig(db_path="/async.db", synchronous=False))
    t_async = async_db.load_sequential(100, 1024, 0.0)
    assert t_async < t_sync
