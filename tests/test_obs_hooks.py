"""Instrumentation facade + cross-layer wiring tests."""

import pytest

from repro.constants import GIB, KIB, MIB
from repro.core import FragPicker, FragPickerConfig
from repro.device import make_device
from repro.fs import make_filesystem
from repro.obs import hooks
from repro.obs.hooks import Instrumentation, NullInstrumentation
from repro.sim.engine import run_concurrently


@pytest.fixture(autouse=True)
def _restore_global_instrumentation():
    yield
    hooks.disable()


def _small_fs():
    device = make_device("optane", capacity=1 * GIB)
    return make_filesystem("ext4", device), device


def test_default_is_null_and_noop():
    obs = hooks.current()
    assert isinstance(obs, NullInstrumentation)
    assert not obs.enabled
    # every hook is callable and returns nothing
    obs.syscall("read", 0.1)
    obs.block_submit(3, 0.01, 0.0)
    obs.device_command("d", "read", 1e-5)
    obs.device_batch("d", 3, 1.0)
    assert obs.span_start("x", 0.0) is None
    obs.span_finish(None, 1.0)
    obs.event("x", 0.0)
    obs.actor_step("a", 0.0, 1.0)
    assert obs.registry is None and obs.spans is None


def test_layers_capture_null_by_default():
    fs, device = _small_fs()
    assert not fs.obs.enabled
    assert not device.obs.enabled
    assert not fs.scheduler.obs.enabled
    handle = fs.open("/f", o_direct=True, create=True)
    fs.write(handle, 0, 64 * KIB)
    fs.read(handle, 0, 64 * KIB)  # must not record anything anywhere


def test_enable_disable_and_use_scoping():
    live = hooks.enable()
    assert hooks.current() is live and live.enabled
    hooks.disable()
    assert not hooks.current().enabled
    with hooks.use(Instrumentation()) as scoped:
        assert hooks.current() is scoped
    assert not hooks.current().enabled


def test_fs_and_block_and_device_wiring():
    with hooks.use(Instrumentation()) as obs:
        fs, _ = _small_fs()
        handle = fs.open("/f", o_direct=True, create=True)
        fs.write(handle, 0, 256 * KIB)
        fs.read(handle, 0, 256 * KIB)
        fs.fsync(handle)
    reg = obs.registry
    assert reg.counter("fs.syscall.read").value == 1
    assert reg.counter("fs.syscall.write").value == 1
    assert reg.counter("fs.syscall.fsync").value == 1
    assert reg.histogram("fs.syscall_latency.read").count == 1
    assert reg.histogram("block.split_fanout").count >= 2
    assert reg.counter("block.requests").value >= 2
    read_hist = reg.histogram("device.optane.command_latency.read")
    assert read_hist.count >= 1 and read_hist.max_value > 0
    assert reg.gauge("device.optane.busy_until").peak > 0


def test_fragpicker_spans_nest():
    with hooks.use(Instrumentation()) as obs:
        fs, _ = _small_fs()
        handle = fs.open("/f", o_direct=True, create=True)
        fs.write(handle, 0, 4 * MIB)
        picker = FragPicker(fs, FragPickerConfig(check_fragmentation=False))
        picker.defragment_bypass(["/f"], now=1.0)
    spans = obs.spans
    outer = spans.by_name("fragpicker.defragment")
    migrates = spans.by_name("fragpicker.migrate")
    assert len(outer) == 1 and migrates
    assert all(m.parent is outer[0] for m in migrates)
    assert outer[0].start == 1.0 and outer[0].end >= max(m.end for m in migrates)
    assert migrates[0].attrs["file"] == "/f"


def test_engine_actor_steps_recorded():
    with hooks.use(Instrumentation()) as obs:
        def actor(ctx):
            for _ in range(3):
                ctx.now += 1.0
                yield
        run_concurrently({"worker": actor})
    hist = obs.registry.histogram("sim.actor_step.worker")
    assert hist.count == 3
    assert hist.mean == pytest.approx(1.0)
    events = [e for e in obs.spans.events if e.track == "worker"]
    assert any(e.name == "actor.run" for e in events)
    assert any(e.name == "actor.finish" for e in events)


def test_null_wiring_adds_nothing_when_disabled():
    fs, _ = _small_fs()  # built while disabled
    with hooks.use(Instrumentation()) as obs:
        # obs enabled *after* construction: layers keep their null facade
        handle = fs.open("/f", o_direct=True, create=True)
        fs.write(handle, 0, 64 * KIB)
    assert obs.registry.counter("fs.syscall.write").value == 0
