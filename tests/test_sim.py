"""Clock, session, and the co-running engine."""

import pytest

from repro.constants import GIB, KIB
from repro.device import make_device
from repro.errors import InvalidArgument
from repro.fs import make_filesystem
from repro.fs.base import FallocMode
from repro.sim import ActorContext, Clock, Session, run_concurrently
from repro.bench.harness import corun_until_background_done


def test_clock_monotonic():
    clock = Clock()
    clock.advance_to(5.0)
    clock.advance_by(1.0)
    assert clock.now == 6.0
    with pytest.raises(InvalidArgument):
        clock.advance_to(2.0)


def test_session_advances_clock(fs):
    session = Session(fs, app="me")
    handle = session.open("/f", o_direct=True, create=True)
    session.write(handle, 0, 64 * KIB)
    t1 = session.now
    assert t1 > 0
    session.read(handle, 0, 64 * KIB)
    assert session.now > t1
    session.sleep(1.0)
    assert session.now > t1 + 1.0


def test_session_full_syscall_surface(fs):
    session = Session(fs, app="me")
    handle = session.open("/f", o_direct=True, create=True)
    session.write(handle, 0, 8 * KIB)
    session.fallocate(handle, FallocMode.PUNCH_HOLE, 0, 4 * KIB)
    session.fsync(handle)
    session.sync()
    session.unlink("/f")
    assert not fs.exists("/f")


def test_engine_orders_by_local_time():
    order = []

    def slow(ctx):
        for i in range(3):
            ctx.now += 10.0
            order.append(("slow", ctx.now))
            yield

    def fast(ctx):
        for i in range(3):
            ctx.now += 1.0
            order.append(("fast", ctx.now))
            yield

    run_concurrently({"slow": slow, "fast": fast})
    # all fast steps (t=1,2,3) happen before slow's second step (t=20)
    assert order[:4] == [("slow", 10.0), ("fast", 1.0), ("fast", 2.0), ("fast", 3.0)]


def test_engine_start_times():
    seen = []

    def actor(ctx):
        seen.append(ctx.now)
        ctx.now += 1
        yield

    contexts = run_concurrently({"a": actor, "b": actor}, start_times={"b": 100.0})
    assert contexts["b"].finished_at >= 100.0
    assert 100.0 in seen


def test_engine_until_cutoff():
    def endless(ctx):
        while True:
            ctx.now += 1.0
            yield

    contexts = run_concurrently({"x": endless}, until=10.0)
    assert contexts["x"].finished_at >= 10.0
    assert contexts["x"].now <= 12.0


def test_engine_timeline_records():
    def worker(ctx):
        for _ in range(5):
            ctx.now += 1.0
            ctx.record(2.0)
            yield

    contexts = run_concurrently({"w": worker})
    assert contexts["w"].timeline.total() == 10.0


def test_corun_until_background_done():
    def fg(ctx):
        while True:
            ctx.now += 1.0
            ctx.record()
            yield

    def bg(ctx):
        for _ in range(5):
            ctx.now += 2.0
            yield

    fg_ctx, bg_ctx = corun_until_background_done(fg, bg)
    assert bg_ctx.now == 10.0
    # the foreground stopped shortly after the background finished
    assert 9.0 <= fg_ctx.now <= 12.0


def test_engine_shares_device_fcfs(fs):
    """Two actors on one filesystem contend for the device."""
    handle = fs.open("/f", o_direct=True, create=True)
    setup_end = fs.write(handle, 0, 1024 * KIB).finish_time

    def reader(name):
        def _run(ctx):
            h = fs.open("/f", o_direct=True, app=name)
            for i in range(50):
                ctx.now = fs.read(h, (i % 8) * 128 * KIB, 128 * KIB, now=ctx.now).finish_time
                ctx.record()
                yield
        return _run

    solo = run_concurrently({"a": reader("a")}, start=setup_end)
    solo_elapsed = solo["a"].now - setup_end
    pair = run_concurrently({"a": reader("a"), "b": reader("b")}, start=setup_end)
    pair_elapsed = max(ctx.now for ctx in pair.values()) - setup_end
    assert pair_elapsed > 1.3 * solo_elapsed  # contention is real
