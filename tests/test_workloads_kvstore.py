"""The LSM store substrate."""

import pytest

from repro.constants import GIB, KIB, MIB
from repro.device import make_device
from repro.fs import make_filesystem
from repro.workloads.kvstore import LsmConfig, LsmStore, _parse_blocks, _LEN


@pytest.fixture
def store(fs):
    return LsmStore(fs, LsmConfig(block_size=16 * KIB, memtable_bytes=64 * KIB))


def test_put_get_memtable(store):
    now = store.put(b"k1", b"v1")
    _, value = store.get(b"k1", now)
    assert value == b"v1"


def test_get_missing(store):
    _, value = store.get(b"nope")
    assert value is None


def test_flush_creates_sst_and_values_survive(store):
    now = 0.0
    for i in range(50):
        now = store.put(b"key%04d" % i, b"value%04d" % i, now)
    now = store.flush(now)
    assert store.memtable == {}
    assert len(store.files()) >= 1
    for i in range(50):
        now, value = store.get(b"key%04d" % i, now)
        assert value == b"value%04d" % i


def test_automatic_flush_on_threshold(store):
    now = 0.0
    for i in range(200):
        now = store.put(b"k%06d" % i, b"x" * 1024, now)
    assert store.stats.flushes >= 1


def test_newest_value_wins_across_levels(store):
    now = 0.0
    now = store.put(b"dup", b"old", now)
    now = store.flush(now)
    now = store.put(b"dup", b"new", now)
    now = store.flush(now)
    now, value = store.get(b"dup", now)
    assert value == b"new"


def test_compaction_merges_and_deletes_old_files(store):
    now = 0.0
    for round_idx in range(store.config.l0_compaction_trigger):
        for i in range(30):
            now = store.put(b"key%04d" % i, b"round%d" % round_idx, now)
        now = store.flush(now)
    assert store.stats.compactions >= 1
    assert store.level0 == []
    assert len(store.level1) >= 1
    now, value = store.get(b"key0000", now)
    assert value == b"round%d" % (store.config.l0_compaction_trigger - 1)


def test_wal_truncated_after_flush(store, fs):
    now = 0.0
    for i in range(50):
        now = store.put(b"key%04d" % i, b"v" * 100, now)
    now = store.flush(now)
    assert fs.inode_of(store.wal_path).size == 0


def test_get_reads_one_block(store, fs):
    now = 0.0
    for i in range(100):
        now = store.put(b"key%04d" % i, b"v" * 500, now)
    now = store.flush(now)
    fs.drop_caches()
    reads_before = fs.device.stats.read_bytes
    now, _ = store.get(b"key0050", now)
    assert fs.device.stats.read_bytes - reads_before == store.config.block_size


def test_parse_blocks_roundtrip():
    block_size = 4096
    items = [(b"a", b"1" * 100), (b"b", b"2" * 3000), (b"c", b"3" * 500)]
    blocks = bytearray()
    pos = 0
    for k, v in items:
        rec = _LEN.pack(len(k), len(v)) + k + v
        if pos % block_size + len(rec) > block_size:
            pad = block_size - pos % block_size
            blocks.extend(b"\x00" * pad)
            pos += pad
        blocks.extend(rec)
        pos += len(rec)
    blocks.extend(b"\x00" * (block_size - len(blocks) % block_size))
    assert _parse_blocks(bytes(blocks), block_size) == items


def test_block_alignment_validated(fs):
    with pytest.raises(Exception):
        LsmStore(fs, LsmConfig(block_size=5000))
