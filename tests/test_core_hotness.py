"""Hotness filtering (Section 4.1.3)."""

import pytest

from repro.core import FileRange, FileRangeList, hotness_filter
from repro.errors import InvalidArgument


def rl(*ranges):
    return FileRangeList(ino=1, path="/f", ranges=list(ranges))


def test_full_criterion_keeps_everything():
    original = rl(FileRange(0, 10, 1), FileRange(20, 30, 2))
    assert hotness_filter(original, 1.0) is original


def test_keeps_hottest_first():
    filtered = hotness_filter(
        rl(FileRange(0, 100, 1), FileRange(200, 300, 10)), 0.5
    )
    assert filtered.ranges == [FileRange(200, 300, 10)]


def test_result_sorted_by_offset():
    filtered = hotness_filter(
        rl(FileRange(500, 600, 5), FileRange(0, 100, 5), FileRange(200, 300, 1)),
        0.66,
    )
    assert [r.start for r in filtered.ranges] == [0, 500]


def test_at_least_one_range_kept():
    filtered = hotness_filter(rl(FileRange(0, 1000, 3)), 0.01)
    assert len(filtered.ranges) == 1


def test_byte_budget():
    ranges = [FileRange(i * 100, i * 100 + 100, 10 - i) for i in range(10)]
    filtered = hotness_filter(rl(*ranges), 0.3)
    assert filtered.total_bytes == 300
    assert all(r.count >= 8 for r in filtered.ranges)


def test_tie_broken_by_offset():
    filtered = hotness_filter(
        rl(FileRange(100, 200, 2), FileRange(0, 100, 2)), 0.5
    )
    assert filtered.ranges == [FileRange(0, 100, 2)]


def test_empty_list_passthrough():
    empty = rl()
    assert hotness_filter(empty, 0.5).ranges == []


@pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
def test_criterion_validated(bad):
    with pytest.raises(InvalidArgument):
        hotness_filter(rl(FileRange(0, 10)), bad)
